module Machine = Stc_fsm.Machine
module Zoo = Stc_fsm.Zoo
module Cube = Stc_logic.Cube
module Cover = Stc_logic.Cover
module B = Stc_netlist.Netlist.Builder
module Json = Stc_obs.Json
module D = Stc_analysis.Diagnostic
module Context = Stc_analysis.Context
module Fsm_lint = Stc_analysis.Fsm_lint
module Cover_lint = Stc_analysis.Cover_lint
module Netgraph = Stc_analysis.Netgraph
module Lint = Stc_analysis.Lint

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let codes diags = List.map (fun d -> d.D.code) diags

let has_code code diags = List.exists (fun d -> d.D.code = code) diags

let errors_with code diags =
  List.filter (fun d -> d.D.code = code && d.D.severity = D.Error) diags

(* --- seeded fault: unreachable state ----------------------------------- *)

(* 3-state machine where s2 has no incoming transition: FSM001 must name
   it.  (s0 <-> s1 on both inputs; s2 is an orphan copy of s0.) *)
let orphan_machine () =
  Machine.make ~name:"orphan" ~num_states:3 ~num_inputs:2 ~num_outputs:2
    ~next:[| [| 1; 1 |]; [| 0; 0 |]; [| 1; 1 |] |]
    ~output:[| [| 0; 1 |]; [| 1; 0 |]; [| 0; 1 |] |]
    ()

let test_fsm_unreachable () =
  let diags = Fsm_lint.lint_machine ~subject:"orphan" (orphan_machine ()) in
  let hits =
    List.filter (fun d -> d.D.code = "FSM001") diags
  in
  check_int "one unreachable state" 1 (List.length hits);
  let d = List.hd hits in
  check_bool "severity is warning" true (d.D.severity = D.Warning);
  check_bool "names s2" true (d.D.loc = "state s2")

let test_fsm_clean_machine () =
  (* The toggle FF is reachable, reduced, connected: no FSM001/FSM002. *)
  let diags = Fsm_lint.lint_machine ~subject:"toggle" (Zoo.toggle ()) in
  check_bool "no unreachable" false (has_code "FSM001" diags);
  check_bool "no equivalent states" false (has_code "FSM002" diags)

let test_fsm_equivalent_states () =
  (* s2 behaves exactly like s0 but is reachable: FSM002, not FSM001. *)
  let m =
    Machine.make ~name:"redundant" ~num_states:3 ~num_inputs:2 ~num_outputs:2
      ~next:[| [| 1; 1 |]; [| 2; 0 |]; [| 1; 1 |] |]
      ~output:[| [| 0; 1 |]; [| 1; 0 |]; [| 0; 1 |] |]
      ()
  in
  let diags = Fsm_lint.lint_machine ~subject:"redundant" m in
  check_bool "FSM002 fires" true (has_code "FSM002" diags);
  check_bool "no FSM001" false (has_code "FSM001" diags)

let test_kiss_nondeterministic () =
  (* Two rows bind (s0, input 1) to different successors: FSM005 error. *)
  let text = ".i 1\n.o 1\n.p 3\n1 s0 s1 1\n1 s0 s0 0\n0 s0 s0 0\n" in
  let diags = Lint.lint_kiss_text ~name:"conflict" text |> snd in
  check_bool "FSM005 fires" true
    (errors_with "FSM005" diags <> [])

let test_kiss_incomplete () =
  (* (s1, 1) is unspecified: FSM006 warning, still parseable by policy. *)
  let text = ".i 1\n.o 1\n1 s0 s1 1\n0 s0 s0 0\n0 s1 s0 1\n" in
  let ctx, diags = Lint.lint_kiss_text ~name:"partial" text in
  check_bool "parses" true (ctx <> None);
  check_bool "FSM006 fires" true (has_code "FSM006" diags)

(* --- seeded fault: conflicting cube pair ------------------------------- *)

let cube input output =
  Cube.make
    ~input:(Array.map (function
                | '0' -> Cube.Zero
                | '1' -> Cube.One
                | _ -> Cube.Dc)
              (Array.init (String.length input) (String.get input)))
    ~output:(Array.map (( = ) '1')
               (Array.init (String.length output) (String.get output)))

let test_cover_conflict () =
  (* Specification: f = x1 (on-set {10,11}).  Implementation cube --/1
     also asserts f on the off-set {00,01}: COV001. *)
  let on = Cover.make ~num_vars:2 ~num_outputs:1 [ cube "1-" "1" ] in
  let dc = Cover.make ~num_vars:2 ~num_outputs:1 [] in
  let result = Cover.make ~num_vars:2 ~num_outputs:1 [ cube "--" "1" ] in
  let diags = Cover_lint.check_block ~subject:"blk" ~on ~dc result in
  check_bool "COV001 fires" true (errors_with "COV001" diags <> []);
  check_bool "no COV002" false (has_code "COV002" diags)

let test_cover_uncovered () =
  (* Implementation drops the on-set minterm 11: COV002. *)
  let on = Cover.make ~num_vars:2 ~num_outputs:1 [ cube "1-" "1" ] in
  let dc = Cover.make ~num_vars:2 ~num_outputs:1 [] in
  let result = Cover.make ~num_vars:2 ~num_outputs:1 [ cube "10" "1" ] in
  let diags = Cover_lint.check_block ~subject:"blk" ~on ~dc result in
  check_bool "COV002 fires" true (errors_with "COV002" diags <> []);
  check_bool "no COV001" false (has_code "COV001" diags)

let test_cover_exact_is_clean () =
  let on = Cover.make ~num_vars:2 ~num_outputs:1 [ cube "1-" "1" ] in
  let dc = Cover.make ~num_vars:2 ~num_outputs:1 [ cube "01" "1" ] in
  let result = Cover.make ~num_vars:2 ~num_outputs:1 [ cube "1-" "1" ] in
  check_int "clean" 0
    (List.length (Cover_lint.check_block ~subject:"blk" ~on ~dc result))

let test_cover_duplicate_and_contained () =
  let c = Cover.make ~num_vars:2 ~num_outputs:1
      [ cube "1-" "1"; cube "1-" "1"; cube "11" "1" ]
  in
  let diags = Cover_lint.check_redundancy ~subject:"blk" c in
  check_bool "COV005 duplicate" true (has_code "COV005" diags);
  check_bool "COV004 contained" true (has_code "COV004" diags)

(* --- seeded fault: deliberate feedback wire ---------------------------- *)

(* A fig. 1-shaped netlist by naming convention: register bit [r0] whose
   next-state net [ns0] depends on [r0] itself - the R->C->R path the
   prover must reject on a structure that claims to be feedback-free. *)
let feedback_netlist () =
  let b = B.create "seeded" in
  let i0 = B.input b "i0" in
  let r0 = B.input b "r0" in
  let g = B.and_ b [ i0; r0 ] in
  B.output b "ns0" g;
  B.output b "po0" (B.not_ b r0);
  B.finish b

(* The fig. 4 shape: R1 feeds only C1 -> R2, R2 feeds only C2 -> R1. *)
let pipeline_netlist () =
  let b = B.create "pipe" in
  let i0 = B.input b "i0" in
  let r1 = B.input b "r1_0" in
  let r2 = B.input b "r2_0" in
  B.output b "r2n0" (B.and_ b [ i0; r1 ]);
  B.output b "r1n0" (B.or_ b [ i0; r2 ]);
  B.output b "po0" (B.buf b r2);
  B.finish b

let test_prover_rejects_feedback () =
  let diags =
    Netgraph.prove_pipeline ~subject:"seeded" ~required:true
      (feedback_netlist ())
  in
  check_bool "NET010 error" true (errors_with "NET010" diags <> []);
  check_bool "no NET011" false (has_code "NET011" diags)

let test_prover_feedback_note_when_expected () =
  (* Same netlist, but feedback is the expected fig. 1 structure: the
     finding demotes to a note and the run stays error-free. *)
  let diags =
    Netgraph.prove_pipeline ~subject:"seeded" ~required:false
      (feedback_netlist ())
  in
  check_bool "NET010 present" true (has_code "NET010" diags);
  check_int "no errors" 0 (D.count D.Error diags)

let test_prover_certifies_pipeline () =
  let diags =
    Netgraph.prove_pipeline ~subject:"pipe" ~required:true
      (pipeline_netlist ())
  in
  check_bool "NET011 certificate" true (has_code "NET011" diags);
  check_bool "no NET010" false (has_code "NET010" diags)

let test_tarjan_cycles () =
  (* 0 -> 1 -> 2 -> 0, 3 -> 4, 5 self-loop: two genuine cycles. *)
  let succ = function
    | 0 -> [ 1 ]
    | 1 -> [ 2 ]
    | 2 -> [ 0 ]
    | 3 -> [ 4 ]
    | 5 -> [ 5 ]
    | _ -> []
  in
  let cyclic = Netgraph.cyclic_sccs ~n:6 ~succ in
  check_int "two cycles" 2 (List.length cyclic);
  check_bool "ring found" true (List.mem [ 0; 1; 2 ] cyclic);
  check_bool "self-loop found" true (List.mem [ 5 ] cyclic);
  let all = Netgraph.sccs ~n:6 ~succ in
  check_int "six nodes partitioned" 6
    (List.fold_left (fun n c -> n + List.length c) 0 all)

let test_netlist_structure_checks () =
  let b = B.create "floaty" in
  let x = B.input b "x" in
  let _unused = B.input b "y" in
  let dead = B.not_ b x in
  let _dead2 = B.and_ b [ dead; x ] in
  B.output b "o" (B.buf b x);
  let diags = Netgraph.structure ~subject:"floaty" (B.finish b) in
  check_bool "NET002 floating gates" true (has_code "NET002" diags);
  check_bool "NET004 unused input" true (has_code "NET004" diags);
  check_bool "no cycle" false (has_code "NET001" diags)

(* --- end-to-end: prover over the zoo ----------------------------------- *)

let zoo_machines () =
  [
    Zoo.paper_fig5 ();
    Zoo.shift_register ~bits:3;
    Zoo.counter ~modulus:5;
    Zoo.toggle ();
    Zoo.serial_adder ();
    Zoo.parity ();
  ]

let test_zoo_certified () =
  List.iter
    (fun m ->
      let _ctx, diags = Lint.lint_machine m in
      check_int (m.Machine.name ^ " has zero errors") 0
        (D.count D.Error diags);
      check_bool (m.Machine.name ^ " certified") true
        (List.exists
           (fun d -> d.D.code = "NET011" && d.D.severity = D.Info)
           diags))
    (zoo_machines ())

let test_conventional_fails_prover () =
  (* The fig. 1 realization has the R -> C -> R feedback by construction;
     requiring the pipeline property of it must fail. *)
  let ctx = Context.of_machine ~conventional:true (Zoo.paper_fig5 ()) in
  let fig1 =
    List.find (fun t -> t.Context.net_label = "fig1") ctx.Context.netlists
  in
  check_bool "fig1 is not required-feedback-free" false
    fig1.Context.feedback_free;
  let diags =
    Netgraph.prove_pipeline ~subject:"fig5/fig1" ~required:true
      fig1.Context.netlist
  in
  check_bool "NET010 error on fig1" true (errors_with "NET010" diags <> []);
  (* ... while the same machine's fig4 netlist is certified. *)
  let fig4 =
    List.find (fun t -> t.Context.net_label = "fig4") ctx.Context.netlists
  in
  let diags =
    Netgraph.prove_pipeline ~subject:"fig5/fig4" ~required:true
      fig4.Context.netlist
  in
  check_bool "NET011 on fig4" true (has_code "NET011" diags)

(* --- determinism ------------------------------------------------------- *)

let render diags = Format.asprintf "%a" D.pp_report diags

let test_reports_sorted_and_stable () =
  let m = Zoo.paper_fig5 () in
  let _, d1 = Lint.lint_machine m in
  let _, d2 = Lint.lint_machine m in
  (* Output is already in canonical order... *)
  check_bool "sorted" true (D.sort d1 = d1);
  (* ... and byte-stable across runs, in text and in JSON. *)
  check_string "text stable" (render d1) (render d2);
  check_string "json stable"
    (Json.to_string (D.report_to_json ~subject:"fig5" d1))
    (Json.to_string (D.report_to_json ~subject:"fig5" d2))

let test_sort_orders_by_subject_code_loc () =
  let d ~code ~subject ~loc = D.warning ~code ~subject ~loc "m" in
  let a = d ~code:"FSM001" ~subject:"b" ~loc:"x" in
  let b = d ~code:"COV001" ~subject:"b" ~loc:"x" in
  let c = d ~code:"FSM001" ~subject:"a" ~loc:"y" in
  let e = d ~code:"FSM001" ~subject:"a" ~loc:"x" in
  check_bool "ordered" true
    (D.sort [ a; b; c; e ] = [ e; c; b; a ]);
  check_bool "dedup" true (D.sort [ a; a; a ] = [ a ])

let test_json_report_shape () =
  let diags =
    [ D.error ~code:"COV001" ~subject:"m/c1" ~loc:"cube 0" "conflict" ]
  in
  let json = D.report_to_json ~subject:"m" diags in
  let s = Json.to_string json in
  let round = Json.parse_exn s in
  check_bool "machine field" true (Json.member "machine" round <> None);
  check_bool "diagnostics field" true
    (Json.member "diagnostics" round <> None);
  check_bool "summary field" true (Json.member "summary" round <> None)

let test_werror_gate () =
  let w = D.warning ~code:"FSM001" ~subject:"m" ~loc:"s" "w" in
  let e = D.error ~code:"COV001" ~subject:"m" ~loc:"s" "e" in
  let i = D.info ~code:"NET011" ~subject:"m" ~loc:"s" "i" in
  check_bool "info never fails" false (D.fails ~werror:true [ i ]);
  check_bool "warning passes" false (D.fails ~werror:false [ w; i ]);
  check_bool "warning fails under werror" true (D.fails ~werror:true [ w ]);
  check_bool "error always fails" true (D.fails ~werror:false [ e ])

let test_pass_registry () =
  (* Referencing Verify links it, which registers the SAT family. *)
  check_int "verify family size" 3 (List.length Stc_analysis.Verify.builtin);
  let names =
    List.map (fun p -> p.Stc_analysis.Pass.name) (Stc_analysis.Pass.all ())
  in
  check_int "all passes registered" 7 (List.length names);
  List.iter
    (fun n -> check_bool (n ^ " registered") true (List.mem n names))
    [
      "cec"; "cover-lint"; "fsm-lint"; "net-graph"; "net-prove";
      "sat-redundant"; "scoap";
    ];
  check_bool "name-sorted" true (List.sort compare names = names);
  (* The lint front door must ignore the verify family: its report on a
     context never contains a verification code. *)
  let ctx = Context.of_machine (Zoo.toggle ()) in
  let lint = Stc_analysis.Lint.run ctx in
  check_bool "lint excludes verify codes" false
    (List.exists
       (fun d ->
         List.exists
           (fun p -> String.length d.D.code >= 3 && String.sub d.D.code 0 3 = p)
           [ "CEC"; "RED" ]
         || d.D.code = "NET012")
       lint)

let test_verify_family () =
  (* End-to-end: every proof must certify the toggle machine's pipeline
     context, and parallel redundancy grading must not change the
     report. *)
  let ctx = Context.of_machine ~jobs:4 (Zoo.toggle ()) in
  let diags = Stc_analysis.Verify.run ctx in
  check_int "no errors" 0 (D.count D.Error diags);
  check_bool "cec certificate present" true
    (List.exists (fun d -> d.D.code = "CEC003") diags);
  check_bool "netlist certificate present" true
    (List.exists (fun d -> d.D.code = "CEC005") diags);
  check_bool "naive agreement present" true
    (List.exists (fun d -> d.D.code = "CEC007" || d.D.code = "CEC008") diags);
  check_bool "pipeline certificate present" true
    (List.exists (fun d -> d.D.code = "NET011") diags);
  check_bool "redundancy summary present" true
    (List.exists (fun d -> d.D.code = "RED002") diags);
  let seq = Stc_analysis.Verify.run (Context.of_machine ~jobs:1 (Zoo.toggle ())) in
  check_bool "jobs-invariant" true (seq = diags);
  (match Stc_analysis.Verify.run ~select:[ "no-such-pass" ] ctx with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown pass name accepted");
  let only_cec = Stc_analysis.Verify.run ~select:[ "cec" ] ctx in
  check_bool "selection restricts" false
    (List.exists (fun d -> d.D.code = "RED002") only_cec)

let test_verify_catches_bad_cover () =
  (* Seed a wrong minimized cover into a context block: CEC must refute
     it with a witness instead of certifying. *)
  let ctx = Context.of_machine (Zoo.toggle ()) in
  let b = List.hd ctx.Context.blocks in
  let wrong =
    (* complement of a correct implementation: drops the on-set and
       asserts the off-set wherever the dc-set allows *)
    let n = b.Context.on.Cover.num_vars in
    Cover.make ~num_vars:n ~num_outputs:b.Context.on.Cover.num_outputs
      [ Cube.of_string (String.make n '-' ^ " " ^ String.make
          b.Context.on.Cover.num_outputs '1') ]
  in
  let seeded = { b with Context.minimized = wrong } in
  let diags = Stc_analysis.Cec.check_block ~subject:"seeded" seeded in
  check_bool "off-set violation or dropped minterm reported" true
    (List.exists (fun d -> d.D.code = "CEC001" || d.D.code = "CEC002") diags);
  check_bool "witness included" true
    (List.exists
       (fun d ->
         d.D.severity = D.Error
         && (let msg = d.D.message in
             let has sub =
               let ls = String.length sub and lm = String.length msg in
               let rec go i = i + ls <= lm && (String.sub msg i ls = sub || go (i + 1)) in
               go 0
             in
             has "witness"))
       diags)

let test_scoap_summary_finite () =
  let ctx = Context.of_machine (Zoo.toggle ()) in
  let t = List.hd ctx.Context.netlists in
  let net = t.Context.netlist in
  let s = Stc_analysis.Scoap.summarize net (Stc_analysis.Scoap.analyze net) in
  check_int "everything controllable" 0 s.Stc_analysis.Scoap.uncontrollable;
  check_int "everything observable" 0 s.Stc_analysis.Scoap.unobservable;
  check_bool "cc0 positive" true (s.Stc_analysis.Scoap.cc0_max >= 1)

let () =
  ignore codes;
  Alcotest.run "stc_analysis"
    [
      ( "fsm-lint",
        [
          Alcotest.test_case "seeded unreachable state" `Quick
            test_fsm_unreachable;
          Alcotest.test_case "clean machine" `Quick test_fsm_clean_machine;
          Alcotest.test_case "equivalent states" `Quick
            test_fsm_equivalent_states;
          Alcotest.test_case "nondeterministic kiss" `Quick
            test_kiss_nondeterministic;
          Alcotest.test_case "incomplete kiss" `Quick test_kiss_incomplete;
        ] );
      ( "cover-lint",
        [
          Alcotest.test_case "seeded conflicting cube" `Quick
            test_cover_conflict;
          Alcotest.test_case "uncovered minterm" `Quick test_cover_uncovered;
          Alcotest.test_case "exact cover is clean" `Quick
            test_cover_exact_is_clean;
          Alcotest.test_case "duplicate and contained cubes" `Quick
            test_cover_duplicate_and_contained;
        ] );
      ( "net-graph",
        [
          Alcotest.test_case "seeded feedback wire rejected" `Quick
            test_prover_rejects_feedback;
          Alcotest.test_case "feedback is a note when expected" `Quick
            test_prover_feedback_note_when_expected;
          Alcotest.test_case "pipeline shape certified" `Quick
            test_prover_certifies_pipeline;
          Alcotest.test_case "tarjan cycles" `Quick test_tarjan_cycles;
          Alcotest.test_case "floating gates and unused inputs" `Quick
            test_netlist_structure_checks;
        ] );
      ( "prover-end-to-end",
        [
          Alcotest.test_case "zoo realizations certified" `Slow
            test_zoo_certified;
          Alcotest.test_case "conventional fig1 fails prover" `Quick
            test_conventional_fails_prover;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "reports sorted and byte-stable" `Quick
            test_reports_sorted_and_stable;
          Alcotest.test_case "sort key subject-code-loc" `Quick
            test_sort_orders_by_subject_code_loc;
          Alcotest.test_case "json report shape" `Quick test_json_report_shape;
          Alcotest.test_case "werror gate" `Quick test_werror_gate;
          Alcotest.test_case "pass registry" `Quick test_pass_registry;
          Alcotest.test_case "scoap summary" `Quick test_scoap_summary_finite;
        ] );
      ( "verify",
        [
          Alcotest.test_case "family certifies toggle" `Quick
            test_verify_family;
          Alcotest.test_case "cec refutes a wrong cover" `Quick
            test_verify_catches_bad_cover;
        ] );
    ]
