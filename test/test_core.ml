module Machine = Stc_fsm.Machine
module Zoo = Stc_fsm.Zoo
module Generate = Stc_fsm.Generate
module Equiv = Stc_fsm.Equiv
module Partition = Stc_partition.Partition
module Pair = Stc_partition.Pair
module Solver = Stc_core.Solver
module Realization = Stc_core.Realization
module Ostr = Stc_core.Ostr
module Rng = Stc_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qcheck = QCheck_alcotest.to_alcotest

let factor_sizes (sol : Solver.solution) =
  let a = Partition.num_classes sol.pi and b = Partition.num_classes sol.rho in
  (min a b, max a b)

(* ------------------------------------------------------------------ *)
(* Solver on machines with known optima                                *)
(* ------------------------------------------------------------------ *)

let test_solver_fig5 () =
  let m = Zoo.paper_fig5 () in
  let r = Solver.solve m in
  check_bool "valid" true (Result.is_ok (Solver.validate m r.best));
  let a, b = factor_sizes r.best in
  check_int "|S1|" 2 a;
  check_int "|S2|" 2 b;
  check_int "2 flip-flops" 2 r.best.cost.bits;
  (* The optimum is exactly the pair of fig. 6 (in either orientation). *)
  let pi_paper = Partition.of_blocks ~n:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  let rho_paper = Partition.of_blocks ~n:4 [ [ 0; 3 ]; [ 1; 2 ] ] in
  let matches =
    (Partition.equal r.best.pi pi_paper && Partition.equal r.best.rho rho_paper)
    || (Partition.equal r.best.pi rho_paper && Partition.equal r.best.rho pi_paper)
  in
  check_bool "matches fig. 6 pair" true matches

let test_solver_shiftreg () =
  let m = Zoo.shift_register ~bits:3 in
  let r = Solver.solve m in
  let a, b = factor_sizes r.best in
  check_int "|S1|" 2 a;
  check_int "|S2|" 4 b;
  check_int "3 flip-flops" 3 r.best.cost.bits

let test_solver_shiftreg_4bit () =
  (* A 4-bit shift register decomposes into (4, 4): pi by even taps, rho by
     odd taps. *)
  let m = Zoo.shift_register ~bits:4 in
  let r = Solver.solve m in
  let a, b = factor_sizes r.best in
  check_int "|S1|" 4 a;
  check_int "|S2|" 4 b;
  check_int "4 flip-flops" 4 r.best.cost.bits

let test_solver_counter_trivial () =
  let m = Zoo.counter ~modulus:8 in
  let r = Solver.solve m in
  check_bool "trivial" true (Solver.is_trivial m r.best)

let test_solver_toggle_trivial () =
  let m = Zoo.toggle () in
  let r = Solver.solve m in
  check_bool "trivial" true (Solver.is_trivial m r.best);
  check_int "2 flip-flops" 2 r.best.cost.bits

let test_solver_stats_accounting () =
  let m = Zoo.shift_register ~bits:3 in
  let r = Solver.solve m in
  check_bool "basis recorded" true (r.stats.basis_size > 0);
  check_bool "investigated >= 1" true (r.stats.investigated >= 1);
  check_bool "search space = 2^basis" true
    (r.stats.search_space = Float.pow 2.0 (float_of_int r.stats.basis_size));
  check_bool "not timed out" false r.stats.timed_out;
  check_bool "solutions found" true (r.stats.solutions >= 1)

let test_solver_pruning_soundness =
  (* Pruning must never change the reported optimum. *)
  QCheck.Test.make ~count:40 ~name:"pruned = unpruned optimum"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 4 in
      let m =
        Generate.random ~rng ~name:"p" ~num_states:n ~num_inputs:2
          ~num_outputs:2 ~ensure_reduced:false ()
      in
      let pruned = Solver.solve m in
      let unpruned = Solver.solve ~prune:false m in
      Solver.compare_cost pruned.best.cost unpruned.best.cost = 0
      && pruned.stats.investigated <= unpruned.stats.investigated)

let test_solver_matches_exhaustive =
  (* The brute-force oracle over all partition pairs.  The DFS can, in rare
     ties, return a pair with the same flip-flop count and the same total
     factor states but slightly worse balance; bits and factor_states must
     always match. *)
  QCheck.Test.make ~count:60 ~name:"solver matches exhaustive optimum"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 4 in
      let m =
        Generate.random ~rng ~name:"x" ~num_states:n ~num_inputs:2
          ~num_outputs:2 ~ensure_reduced:false ()
      in
      let dfs = Solver.solve m in
      let oracle = Solver.solve_exhaustive m in
      dfs.best.cost.bits = oracle.cost.bits
      && dfs.best.cost.factor_states = oracle.cost.factor_states)

let test_solver_solutions_always_valid =
  QCheck.Test.make ~count:60 ~name:"solver output is always a valid solution"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let n = 2 + Rng.int rng 8 in
      let m =
        Generate.random ~rng ~name:"v" ~num_states:n ~num_inputs:4
          ~num_outputs:3 ~ensure_reduced:false ()
      in
      let r = Solver.solve m in
      Result.is_ok (Solver.validate m r.best))

let test_solver_planted_recovered =
  QCheck.Test.make ~count:25 ~name:"planted factors are recovered or beaten"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let info =
        Generate.block_product ~rng ~name:"pl"
          ~blocks:[ (2, 2); (1, 2); (1, 1) ]
          ~num_inputs:8 ~num_outputs:8 ()
      in
      let m = info.Generate.machine in
      let planted_pi = Partition.of_class_map info.Generate.pi_classes in
      let planted_rho = Partition.of_class_map info.Generate.rho_classes in
      let planted_cost = Solver.cost_of m ~pi:planted_pi ~rho:planted_rho in
      let r = Solver.solve m in
      Solver.compare_cost r.best.cost planted_cost <= 0)

let test_solver_timeout_returns_best () =
  let rng = Rng.create 123 in
  let info =
    Generate.block_product ~rng ~name:"big"
      ~blocks:(List.init 8 (fun _ -> (2, 2)))
      ~num_inputs:8 ~num_outputs:8 ()
  in
  let r = Solver.solve ~timeout:0.0 info.Generate.machine in
  check_bool "timed out" true r.stats.timed_out;
  check_bool "still returns a valid solution" true
    (Result.is_ok (Solver.validate info.Generate.machine r.best))

let test_solver_max_nodes () =
  let m = Zoo.counter ~modulus:8 in
  let r = Solver.solve ~max_nodes:5 m in
  check_bool "capped" true (r.stats.investigated <= 5)

let test_solver_parallel_matches_sequential () =
  (* Fanning the search over domains must not change the reported optimum
     (cost-identical, valid), on the whole benchmark suite plus the zoo
     machines with known structure. *)
  let machines =
    List.map
      (fun spec -> Stc_benchmarks.Suite.machine spec)
      Stc_benchmarks.Suite.all
    @ [
        Zoo.paper_fig5 ();
        Zoo.shift_register ~bits:3;
        Zoo.shift_register ~bits:4;
        Zoo.serial_adder ();
        Zoo.counter ~modulus:8;
        Zoo.toggle ();
        Zoo.parity ();
      ]
  in
  List.iter
    (fun m ->
      let seq = Solver.solve ~jobs:1 m in
      (* [sequential_fallback:false] keeps the domain fan-out under test
         even on single-core hardware, where the default would (by
         design) degrade jobs=4 to the sequential path. *)
      let par = Solver.solve ~jobs:4 ~sequential_fallback:false m in
      check_int
        (m.Machine.name ^ ": parallel bits = sequential bits")
        seq.best.cost.bits par.best.cost.bits;
      check_bool
        (m.Machine.name ^ ": costs compare equal")
        true
        (Solver.compare_cost seq.best.cost par.best.cost = 0);
      check_bool
        (m.Machine.name ^ ": parallel solution valid")
        true
        (Result.is_ok (Solver.validate m par.best)))
    machines

let test_solver_deterministic_stats () =
  (* With jobs = 1 the traversal order is fixed, so repeated runs agree on
     every counter, not just the optimum. *)
  List.iter
    (fun m ->
      let a = Solver.solve ~jobs:1 m and b = Solver.solve ~jobs:1 m in
      check_int (m.Machine.name ^ ": investigated") a.stats.investigated
        b.stats.investigated;
      check_int (m.Machine.name ^ ": deduped") a.stats.deduped b.stats.deduped;
      check_int (m.Machine.name ^ ": pruned") a.stats.pruned b.stats.pruned;
      check_int (m.Machine.name ^ ": solutions") a.stats.solutions
        b.stats.solutions;
      check_int (m.Machine.name ^ ": memo hits") a.stats.memo_hits
        b.stats.memo_hits;
      check_bool
        (m.Machine.name ^ ": same optimum")
        true
        (Partition.equal a.best.pi b.best.pi
        && Partition.equal a.best.rho b.best.rho))
    [ Zoo.paper_fig5 (); Zoo.shift_register ~bits:4; Zoo.serial_adder () ]

let test_solver_dedupe_accounting () =
  (* The shift register's basis joins collide heavily, so the transposition
     table must report skipped arrivals; every skipped arrival is a node
     the seed search would have expanded. *)
  let m = Zoo.shift_register ~bits:4 in
  let r = Solver.solve m in
  check_bool "deduped > 0" true (r.stats.deduped > 0);
  check_bool "memoized operators hit" true (r.stats.memo_hits > 0);
  (* Each distinct (partition, branch) pair is expanded at most once, so
     the investigated count is bounded by the unpruned lattice walk. *)
  check_bool "investigated bounded" true
    (float_of_int r.stats.investigated <= r.stats.search_space)

let test_solver_unreduced_machine () =
  (* A machine with equivalent states: pi /\ rho only needs to refine the
     equivalence, so the twins can share a class in both factors. *)
  let m =
    Machine.make ~name:"twin" ~num_states:3 ~num_inputs:2 ~num_outputs:2
      ~next:[| [| 1; 2 |]; [| 0; 1 |]; [| 0; 2 |] |]
      ~output:[| [| 0; 1 |]; [| 1; 0 |]; [| 1; 0 |] |]
      ()
  in
  let r = Solver.solve m in
  check_bool "valid on unreduced machine" true (Result.is_ok (Solver.validate m r.best));
  (* |S1| * |S2| only needs to cover the 2 equivalence classes. *)
  let a, b = factor_sizes r.best in
  check_bool "factors cover the reduced machine" true (a * b >= 2)

let test_validate_rejects_bad_pairs () =
  let m = Zoo.paper_fig5 () in
  let bad =
    {
      Solver.pi = Partition.of_blocks ~n:4 [ [ 0; 2 ] ];
      rho = Partition.of_blocks ~n:4 [ [ 1; 3 ] ];
      cost = Solver.cost_of m
          ~pi:(Partition.of_blocks ~n:4 [ [ 0; 2 ] ])
          ~rho:(Partition.of_blocks ~n:4 [ [ 1; 3 ] ]);
    }
  in
  check_bool "rejected" true (Result.is_error (Solver.validate m bad))

let test_compare_cost_ordering () =
  let c bits factor_states imbalance = { Solver.bits; factor_states; imbalance } in
  check_bool "fewer bits wins" true (Solver.compare_cost (c 3 20 0.0) (c 4 4 0.0) < 0);
  check_bool "fewer states breaks ties" true
    (Solver.compare_cost (c 4 13 0.2) (c 4 14 0.0) < 0);
  check_bool "balance breaks remaining ties" true
    (Solver.compare_cost (c 4 12 0.0) (c 4 12 0.4) < 0)

(* ------------------------------------------------------------------ *)
(* Realization (Theorem 1)                                             *)
(* ------------------------------------------------------------------ *)

let fig5_realization () =
  let m = Zoo.paper_fig5 () in
  let pi = Partition.of_blocks ~n:4 [ [ 0; 1 ]; [ 2; 3 ] ] in
  let rho = Partition.of_blocks ~n:4 [ [ 0; 3 ]; [ 1; 2 ] ] in
  Realization.build m ~pi ~rho

let test_realization_fig7_tables () =
  let r = fig5_realization () in
  (* fig. 7: delta1([1]pi, 1) = [2]rho, delta1([1]pi, 0) = [1]rho,
             delta1([3]pi, 1) = [1]rho, delta1([3]pi, 0) = [2]rho.
     Class 0 of pi is {s1,s2} = [1]pi; class 0 of rho is {s1,s4} = [1]rho. *)
  check_int "delta1([1]pi, 1)" 1 r.Realization.delta1.(0).(1);
  check_int "delta1([1]pi, 0)" 0 r.Realization.delta1.(0).(0);
  check_int "delta1([3]pi, 1)" 0 r.Realization.delta1.(1).(1);
  check_int "delta1([3]pi, 0)" 1 r.Realization.delta1.(1).(0);
  (* fig. 7: delta2([1]rho, 1) = [3]pi, delta2([1]rho, 0) = [1]pi,
             delta2([2]rho, 1) = [1]pi, delta2([2]rho, 0) = [3]pi. *)
  check_int "delta2([1]rho, 1)" 1 r.Realization.delta2.(0).(1);
  check_int "delta2([1]rho, 0)" 0 r.Realization.delta2.(0).(0);
  check_int "delta2([2]rho, 1)" 0 r.Realization.delta2.(1).(1);
  check_int "delta2([2]rho, 0)" 1 r.Realization.delta2.(1).(0)

let test_realization_fig5_properties () =
  let r = fig5_realization () in
  check_bool "realizes" true (Realization.realizes r);
  check_int "|S1|" 2 (Realization.num_s1 r);
  check_int "|S2|" 2 (Realization.num_s2 r);
  check_int "flipflops" 2 (Realization.flipflops r);
  check_int "no filler needed" 0 r.Realization.filled;
  check_bool "product behaviour equals spec" true
    (Machine.equal_behaviour r.Realization.spec r.Realization.product);
  check_int "spec transitions" 8 (Realization.spec_transitions r);
  check_int "factor transitions" 8 (Realization.factor_transitions r)

let test_realization_filler () =
  (* dk27-style machine: |S1| * |S2| = 42 > 7 states, so most product
     states need the filler output. *)
  let rng = Rng.create 555 in
  let info =
    Generate.block_product ~rng ~name:"filler"
      ~blocks:((1, 2) :: List.init 5 (fun _ -> (1, 1)))
      ~num_inputs:2 ~num_outputs:4 ~distinct_signatures:false ()
  in
  let m = info.Generate.machine in
  let pi = Partition.of_class_map info.Generate.pi_classes in
  let rho = Partition.of_class_map info.Generate.rho_classes in
  let r = Realization.build m ~pi ~rho in
  check_int "42 product states" 42 r.Realization.product.Machine.num_states;
  check_int "35 filled entries" 35 r.Realization.filled;
  check_bool "still realizes" true (Realization.realizes r);
  check_bool "behaviour preserved" true
    (Machine.equal_behaviour m r.Realization.product)

let test_realization_rejects_invalid () =
  let m = Zoo.paper_fig5 () in
  let pi = Partition.of_blocks ~n:4 [ [ 0; 2 ] ] in
  let rho = Partition.of_blocks ~n:4 [ [ 1; 3 ] ] in
  check_bool "rejected" true
    (match Realization.build m ~pi ~rho with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_realization_trivial_is_doubling () =
  (* The trivial solution (identity, identity) corresponds to doubling the
     machine (fig. 3): the product machine restricted to reachable states
     is the original machine. *)
  let m = Zoo.counter ~modulus:4 in
  let id = Partition.identity 4 in
  let r = Realization.build m ~pi:id ~rho:id in
  check_int "16 product states" 16 r.Realization.product.Machine.num_states;
  check_bool "realizes" true (Realization.realizes r);
  check_bool "behaviour preserved" true
    (Machine.equal_behaviour m r.Realization.product)

let test_realization_random_block_products =
  QCheck.Test.make ~count:30 ~name:"realization of solver optimum always realizes"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let info =
        Generate.block_product ~rng ~name:"rr"
          ~blocks:[ (1, 2); (2, 1); (1, 1) ]
          ~num_inputs:4 ~num_outputs:4 ()
      in
      let m = info.Generate.machine in
      let r = Solver.solve m in
      let real = Realization.of_solution m r.best in
      Realization.realizes real
      && Machine.equal_behaviour m real.Realization.product)

let test_pp_factors_output () =
  let r = fig5_realization () in
  let s = Format.asprintf "@[<v>%a@]" Realization.pp_factors r in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "mentions delta1" true (contains s "delta1");
  check_bool "uses paper-style class names" true (contains s "[s1]")

(* ------------------------------------------------------------------ *)
(* Ostr facade                                                         *)
(* ------------------------------------------------------------------ *)

let test_ostr_shiftreg () =
  let outcome = Ostr.run (Zoo.shift_register ~bits:3) in
  check_bool "nontrivial" true (Ostr.nontrivial outcome);
  check_bool "reaches lower bound" true (Ostr.reaches_lower_bound outcome);
  check_int "pipeline flip-flops" 3 (Realization.flipflops outcome.realization)

let test_ostr_counter () =
  let outcome = Ostr.run (Zoo.counter ~modulus:8) in
  check_bool "trivial" false (Ostr.nontrivial outcome);
  check_bool "lower bound not reached" false (Ostr.reaches_lower_bound outcome)

let test_ostr_summary_mentions_fields () =
  let outcome = Ostr.run (Zoo.paper_fig5 ()) in
  let s = Format.asprintf "%a" Ostr.pp_summary outcome in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "machine name" true (contains s "fig5");
  check_bool "factors" true (contains s "|S1| = 2");
  check_bool "search stats" true (contains s "investigated")

let () =
  Alcotest.run "stc_core"
    [
      ( "solver",
        [
          Alcotest.test_case "fig5 optimum" `Quick test_solver_fig5;
          Alcotest.test_case "shiftreg optimum" `Quick test_solver_shiftreg;
          Alcotest.test_case "4-bit shiftreg optimum" `Quick test_solver_shiftreg_4bit;
          Alcotest.test_case "counter is trivial" `Quick test_solver_counter_trivial;
          Alcotest.test_case "toggle is trivial" `Quick test_solver_toggle_trivial;
          Alcotest.test_case "stats accounting" `Quick test_solver_stats_accounting;
          qcheck test_solver_pruning_soundness;
          qcheck test_solver_matches_exhaustive;
          qcheck test_solver_solutions_always_valid;
          qcheck test_solver_planted_recovered;
          Alcotest.test_case "timeout returns best" `Quick test_solver_timeout_returns_best;
          Alcotest.test_case "max_nodes cap" `Quick test_solver_max_nodes;
          Alcotest.test_case "parallel = sequential (suite + zoo)" `Slow
            test_solver_parallel_matches_sequential;
          Alcotest.test_case "deterministic stats (jobs=1)" `Quick
            test_solver_deterministic_stats;
          Alcotest.test_case "dedupe accounting" `Quick
            test_solver_dedupe_accounting;
          Alcotest.test_case "unreduced machine" `Quick test_solver_unreduced_machine;
          Alcotest.test_case "validate rejects bad pairs" `Quick
            test_validate_rejects_bad_pairs;
          Alcotest.test_case "cost ordering" `Quick test_compare_cost_ordering;
        ] );
      ( "realization",
        [
          Alcotest.test_case "fig7 factor tables" `Quick test_realization_fig7_tables;
          Alcotest.test_case "fig5 properties" `Quick test_realization_fig5_properties;
          Alcotest.test_case "filler entries" `Quick test_realization_filler;
          Alcotest.test_case "rejects invalid pair" `Quick test_realization_rejects_invalid;
          Alcotest.test_case "trivial = doubling" `Quick
            test_realization_trivial_is_doubling;
          qcheck test_realization_random_block_products;
          Alcotest.test_case "pp factors" `Quick test_pp_factors_output;
        ] );
      ( "ostr",
        [
          Alcotest.test_case "shiftreg" `Quick test_ostr_shiftreg;
          Alcotest.test_case "counter" `Quick test_ostr_counter;
          Alcotest.test_case "summary" `Quick test_ostr_summary_mentions_fields;
        ] );
    ]
