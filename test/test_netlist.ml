module N = Stc_netlist.Netlist
module B = Stc_netlist.Netlist.Builder
module Cover = Stc_logic.Cover
module Rng = Stc_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qcheck = QCheck_alcotest.to_alcotest

(* A tiny reference netlist: f = (a & b) | ~c, g = a ^ c. *)
let reference () =
  let b = B.create "ref" in
  let a = B.input b "a" in
  let bb = B.input b "b" in
  let c = B.input b "c" in
  let ab = B.and_ b [ a; bb ] in
  let nc = B.not_ b c in
  let f = B.or_ b [ ab; nc ] in
  let g = B.xor_ b [ a; c ] in
  B.output b "f" f;
  B.output b "g" g;
  (B.finish b, f, g)

let test_eval_reference () =
  let net, _, _ = reference () in
  for v = 0 to 7 do
    let a = (v lsr 2) land 1 and bb = (v lsr 1) land 1 and c = v land 1 in
    let out = N.eval_outputs net ~inputs:[| a; bb; c |] in
    let f = (a land bb) lor (1 - c) and g = a lxor c in
    check_int (Printf.sprintf "f at %d" v) f (out.(0) land 1);
    check_int (Printf.sprintf "g at %d" v) g (out.(1) land 1)
  done

let test_word_parallel_matches_scalar () =
  let net, _, _ = reference () in
  (* Pack all 8 combinations into one word. *)
  let word k = List.init 8 (fun v -> ((v lsr k) land 1) lsl v)
               |> List.fold_left ( lor ) 0 in
  let out = N.eval_outputs net ~inputs:[| word 2; word 1; word 0 |] in
  for v = 0 to 7 do
    let a = (v lsr 2) land 1 and bb = (v lsr 1) land 1 and c = v land 1 in
    check_int "lane f" ((a land bb) lor (1 - c)) ((out.(0) lsr v) land 1);
    check_int "lane g" (a lxor c) ((out.(1) lsr v) land 1)
  done

let test_mux_semantics () =
  let b = B.create "mux" in
  let s = B.input b "s" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let m = B.mux b ~sel:s ~a:x ~b:y in
  B.output b "m" m;
  let net = B.finish b in
  List.iter
    (fun (s, x, y, want) ->
      let out = N.eval_outputs net ~inputs:[| s; x; y |] in
      check_int "mux" want (out.(0) land 1))
    [ (0, 1, 0, 1); (0, 0, 1, 0); (1, 1, 0, 0); (1, 0, 1, 1) ]

let test_const_and_buf () =
  let b = B.create "c" in
  let x = B.input b "x" in
  let t = B.const b true in
  let f = B.const b false in
  let bx = B.buf b x in
  let o = B.or_ b [ f; bx ] in
  let a = B.and_ b [ t; o ] in
  B.output b "a" a;
  let net = B.finish b in
  (* a = true & (false | buf x) = x *)
  check_int "passes x=1" 1 ((N.eval_outputs net ~inputs:[| 1 |]).(0) land 1);
  check_int "passes x=0" 0 ((N.eval_outputs net ~inputs:[| 0 |]).(0) land 1)

let test_builder_rejects_forward_refs () =
  let b = B.create "bad" in
  check_bool "forward ref" true
    (match B.buf b 3 with exception Invalid_argument _ -> true | _ -> false);
  check_bool "empty and" true
    (match B.and_ b [] with exception Invalid_argument _ -> true | _ -> false)

let test_eval_rejects_wrong_input_count () =
  let net, _, _ = reference () in
  check_bool "rejected" true
    (match N.eval net ~inputs:[| 0; 1 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_stats () =
  let net, _, _ = reference () in
  let s = N.stats net in
  check_int "gates" 4 s.N.gates;
  check_int "inverters" 1 s.N.inverters;
  check_bool "depth >= 2" true (s.N.depth >= 2);
  check_int "literals (and2 + or2 + xor2)" 6 s.N.literals

let test_fault_stuck_output () =
  let net, f_gate, _ = reference () in
  (* f stuck-at-0: output f is 0 regardless. *)
  let out =
    N.eval_outputs ~fault:{ N.gate = f_gate; pin = None; stuck_at = false } net
      ~inputs:[| 1; 1; 1 |]
  in
  check_int "forced 0" 0 (out.(0) land 1);
  let out =
    N.eval_outputs ~fault:{ N.gate = f_gate; pin = None; stuck_at = true } net
      ~inputs:[| 0; 0; 1 |]
  in
  check_int "forced 1" 1 (out.(0) land 1)

let test_fault_stuck_pin () =
  let b = B.create "pin" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let a = B.and_ b [ x; y ] in
  B.output b "a" a;
  let net = B.finish b in
  (* Pin 1 (y) stuck-at-1: gate computes x & 1 = x. *)
  let out =
    N.eval_outputs ~fault:{ N.gate = a; pin = Some 1; stuck_at = true } net
      ~inputs:[| 1; 0 |]
  in
  check_int "pin stuck 1" 1 (out.(0) land 1);
  (* But the y input itself is unaffected elsewhere. *)
  let out = N.eval_outputs net ~inputs:[| 1; 0 |] in
  check_int "fault-free" 0 (out.(0) land 1)

let test_fault_sites_count () =
  let b = B.create "sites" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let a = B.and_ b [ x; y ] in
  let n = B.not_ b a in
  B.output b "n" n;
  let net = B.finish b in
  (* inputs: 2 gates x 2 = 4; and: output 2 + 2 pins x 2 = 6; not: 2. *)
  check_int "site count" 12 (List.length (N.fault_sites net))

let test_emit_cover_matches_eval =
  QCheck.Test.make ~count:150 ~name:"emit_cover netlist computes Cover.eval"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars = 2 + Rng.int rng 4 in
      let num_outputs = 1 + Rng.int rng 3 in
      let cube _ =
        let input =
          Array.init num_vars (fun _ ->
              match Rng.int rng 3 with
              | 0 -> Stc_logic.Cube.Zero
              | 1 -> Stc_logic.Cube.One
              | _ -> Stc_logic.Cube.Dc)
        in
        let output = Array.init num_outputs (fun _ -> Rng.bool rng) in
        if not (Array.exists Fun.id output) then output.(0) <- true;
        Stc_logic.Cube.make ~input ~output
      in
      let cover =
        Cover.make ~num_vars ~num_outputs (List.init (1 + Rng.int rng 6) cube)
      in
      let b = B.create "cover" in
      let inputs =
        Array.init num_vars (fun k -> B.input b (Printf.sprintf "x%d" k))
      in
      let outs = B.emit_cover b ~inputs cover in
      Array.iteri (fun o g -> B.output b (Printf.sprintf "y%d" o) g) outs;
      let net = B.finish b in
      let ok = ref true in
      for v = 0 to (1 lsl num_vars) - 1 do
        let bits =
          Array.init num_vars (fun k -> (v lsr (num_vars - 1 - k)) land 1)
        in
        let got = N.eval_outputs net ~inputs:bits in
        let want = Cover.eval cover v in
        Array.iteri
          (fun o w -> if (got.(o) land 1 = 1) <> w then ok := false)
          want
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* eval_into / readers / cone                                          *)
(* ------------------------------------------------------------------ *)

let test_eval_into_matches_eval () =
  let net, _, _ = reference () in
  let inputs = [| 0b1010; 0b1100; 0b0110 |] in
  let want = N.eval net ~inputs in
  let values = Array.make (N.num_gates net) 0 in
  N.eval_into net ~values ~inputs;
  check_bool "same values" true (values = want);
  (* Buffer reuse across a faulty evaluation. *)
  let fault = { N.gate = N.num_gates net - 1; pin = None; stuck_at = true } in
  let want_f = N.eval ~fault net ~inputs in
  N.eval_into ~fault net ~values ~inputs;
  check_bool "same faulty values" true (values = want_f);
  check_bool "rejects short buffer" true
    (match N.eval_into net ~values:(Array.make 2 0) ~inputs with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* x, y inputs; a = x & y; n = ~a; output n. *)
let chain () =
  let b = B.create "chain" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let a = B.and_ b [ x; y ] in
  let n = B.not_ b a in
  B.output b "n" n;
  (B.finish b, x, y, a, n)

let test_readers () =
  let net, x, y, a, n = chain () in
  let rd = N.readers net in
  check_bool "x read by a pin 0" true (rd.(x) = [| (a, 0) |]);
  check_bool "y read by a pin 1" true (rd.(y) = [| (a, 1) |]);
  check_bool "a read by n" true (rd.(a) = [| (n, 0) |]);
  check_bool "n unread" true (rd.(n) = [||])

let test_cone () =
  let net, x, _, a, n = chain () in
  check_bool "cone of x" true (N.cone net x = [| x; a; n |]);
  check_bool "cone of sink" true (N.cone net n = [| n |]);
  (* Ascending = topological order, site first. *)
  let c = N.cone net x in
  check_bool "sorted" true
    (Array.for_all (fun i -> i >= x) c
    && c = (let s = Array.copy c in Array.sort compare s; s));
  check_bool "out of range" true
    (match N.cone net (N.num_gates net) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ------------------------------------------------------------------ *)
(* Structural fault collapsing                                         *)
(* ------------------------------------------------------------------ *)

(* The collapsed record must be a proper partition of fault_sites with
   least-member representatives. *)
let check_partition (c : N.collapsed) =
  let nf = Array.length c.N.faults in
  check_int "class_of length" nf (Array.length c.N.class_of);
  let seen = Array.make nf 0 in
  Array.iteri
    (fun id members ->
      check_bool "nonempty class" true (Array.length members > 0);
      check_int "representative is least member" c.N.representatives.(id)
        members.(0);
      Array.iter
        (fun f ->
          seen.(f) <- seen.(f) + 1;
          check_int "member maps back" id c.N.class_of.(f))
        members)
    c.N.classes;
  Array.iter (fun n -> check_int "fault in exactly one class" 1 n) seen

let find_class (c : N.collapsed) fault =
  let rec go i =
    if c.N.faults.(i) = fault then c.N.class_of.(i) else go (i + 1)
  in
  go 0

let test_collapse_and_gate () =
  let b = B.create "and2" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let a = B.and_ b [ x; y ] in
  B.output b "a" a;
  let net = B.finish b in
  let c = N.collapse net in
  check_partition c;
  check_int "raw faults" 10 (Array.length c.N.faults);
  (* s-a-0: x, y (fanout-free stems) fold onto the pins, the pins onto the
     output - one class of 5.  s-a-1: {x, pin0} and {y, pin1}; the output
     s-a-1 stays alone but is dominated by both pin classes. *)
  check_int "classes" 4 (Array.length c.N.representatives);
  let out_sa0 = find_class c { N.gate = a; pin = None; stuck_at = false } in
  check_int "sa0 class size" 5 (Array.length c.N.classes.(out_sa0));
  check_int "x sa0 folded" out_sa0
    (find_class c { N.gate = x; pin = None; stuck_at = false });
  let out_sa1 = find_class c { N.gate = a; pin = None; stuck_at = true } in
  check_int "sa1 output alone" 1 (Array.length c.N.classes.(out_sa1));
  let pin0_sa1 = find_class c { N.gate = a; pin = Some 0; stuck_at = true } in
  let pin1_sa1 = find_class c { N.gate = a; pin = Some 1; stuck_at = true } in
  let doms = c.N.dominated_by.(out_sa1) in
  check_int "dominated by both pin classes" 2 (Array.length doms);
  check_bool "dominators are the pin s-a-1 classes" true
    (List.sort compare [ pin0_sa1; pin1_sa1 ]
    = List.sort compare (Array.to_list doms));
  check_bool "equivalence classes carry no dominance" true
    (c.N.dominated_by.(out_sa0) = [||])

let test_collapse_protected () =
  let b = B.create "and2p" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let a = B.and_ b [ x; y ] in
  B.output b "a" a;
  let net = B.finish b in
  (* Protecting x keeps its faults distinct from the pin faults: the big
     s-a-0 class shrinks to 4 and both x faults become singletons. *)
  let c = N.collapse ~protected:[| x; a |] net in
  check_partition c;
  check_int "classes with x protected" 6 (Array.length c.N.representatives);
  let x_sa0 = find_class c { N.gate = x; pin = None; stuck_at = false } in
  check_int "x sa0 singleton" 1 (Array.length c.N.classes.(x_sa0));
  let out_sa0 = find_class c { N.gate = a; pin = None; stuck_at = false } in
  check_int "sa0 class size" 4 (Array.length c.N.classes.(out_sa0))

let test_collapse_buf_not_chain () =
  let b = B.create "bufchain" in
  let x = B.input b "x" in
  let b1 = B.buf b x in
  let n1 = B.not_ b b1 in
  B.output b "n" n1;
  let net = B.finish b in
  let c = N.collapse net in
  check_partition c;
  (* x / buf / not output faults all fold (the Not inverting the stuck
     value): {x0, b1 0, n1 1} and {x1, b1 1, n1 0}. *)
  check_int "classes" 2 (Array.length c.N.representatives);
  check_int "x sa0 with not-output sa1"
    (find_class c { N.gate = x; pin = None; stuck_at = false })
    (find_class c { N.gate = n1; pin = None; stuck_at = true })

let test_collapse_fanout_blocks_fold () =
  let b = B.create "fanout" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let a = B.and_ b [ x; y ] in
  let o = B.or_ b [ x; y ] in
  B.output b "a" a;
  B.output b "o" o;
  let net = B.finish b in
  let c = N.collapse net in
  check_partition c;
  (* x and y feed two gates: their output faults must stay distinct from
     any single reader's pin faults. *)
  check_bool "x sa0 not folded into and-pin" true
    (find_class c { N.gate = x; pin = None; stuck_at = false }
    <> find_class c { N.gate = a; pin = Some 0; stuck_at = false })

(* Semantic soundness on random two-level networks: with the declared
   outputs protected, every member of a class must be detected on exactly
   the same exhaustive input vectors as its representative, and any vector
   detecting a dominated class must detect its dominator. *)
let test_collapse_classes_behave_identically =
  QCheck.Test.make ~count:100 ~name:"collapsed classes are behaviourally exact"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars = 2 + Rng.int rng 4 in
      let num_outputs = 1 + Rng.int rng 3 in
      let cube _ =
        let input =
          Array.init num_vars (fun _ ->
              match Rng.int rng 3 with
              | 0 -> Stc_logic.Cube.Zero
              | 1 -> Stc_logic.Cube.One
              | _ -> Stc_logic.Cube.Dc)
        in
        let output = Array.init num_outputs (fun _ -> Rng.bool rng) in
        if not (Array.exists Fun.id output) then output.(0) <- true;
        Stc_logic.Cube.make ~input ~output
      in
      let cover =
        Cover.make ~num_vars ~num_outputs (List.init (1 + Rng.int rng 6) cube)
      in
      let b = B.create "cover" in
      let inputs =
        Array.init num_vars (fun k -> B.input b (Printf.sprintf "x%d" k))
      in
      let outs = B.emit_cover b ~inputs cover in
      Array.iteri (fun o g -> B.output b (Printf.sprintf "y%d" o) g) outs;
      let net = B.finish b in
      let c = N.collapse net in
      (* One lane per input vector: exhaustive in a single word. *)
      let lanes = 1 lsl num_vars in
      let words =
        Array.init num_vars (fun k ->
            let w = ref 0 in
            for v = 0 to lanes - 1 do
              if (v lsr (num_vars - 1 - k)) land 1 = 1 then
                w := !w lor (1 lsl v)
            done;
            !w)
      in
      let mask = (1 lsl lanes) - 1 in
      let golden = N.eval_outputs net ~inputs:words in
      let detect_lanes fi =
        let out = N.eval_outputs ~fault:c.N.faults.(fi) net ~inputs:words in
        let d = ref 0 in
        Array.iteri
          (fun k v -> d := !d lor ((v lxor golden.(k)) land mask))
          out;
        !d
      in
      try
        let class_lanes =
          Array.map
            (fun members ->
              let l0 = detect_lanes members.(0) in
              Array.iter
                (fun fi -> if detect_lanes fi <> l0 then raise Exit)
                members;
              l0)
            c.N.classes
        in
        Array.iteri
          (fun d doms ->
            Array.iter
              (fun dom ->
                if class_lanes.(dom) land lnot class_lanes.(d) <> 0 then
                  raise Exit)
              doms)
          c.N.dominated_by;
        true
      with Exit -> false)

let test_pp_lists_gates () =
  let net, _, _ = reference () in
  let s = Format.asprintf "%a" N.pp net in
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "header" true (contains s "netlist ref");
  check_bool "output" true (contains s "output f")

let () =
  Alcotest.run "stc_netlist"
    [
      ( "eval",
        [
          Alcotest.test_case "reference truth table" `Quick test_eval_reference;
          Alcotest.test_case "word-parallel = scalar" `Quick
            test_word_parallel_matches_scalar;
          Alcotest.test_case "mux semantics" `Quick test_mux_semantics;
          Alcotest.test_case "const and buf" `Quick test_const_and_buf;
          Alcotest.test_case "rejects wrong input count" `Quick
            test_eval_rejects_wrong_input_count;
        ] );
      ( "builder",
        [
          Alcotest.test_case "rejects forward refs" `Quick
            test_builder_rejects_forward_refs;
          qcheck test_emit_cover_matches_eval;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "pp" `Quick test_pp_lists_gates;
        ] );
      ( "faults",
        [
          Alcotest.test_case "stuck output" `Quick test_fault_stuck_output;
          Alcotest.test_case "stuck pin" `Quick test_fault_stuck_pin;
          Alcotest.test_case "site count" `Quick test_fault_sites_count;
        ] );
      ( "structure",
        [
          Alcotest.test_case "eval_into matches eval" `Quick
            test_eval_into_matches_eval;
          Alcotest.test_case "readers" `Quick test_readers;
          Alcotest.test_case "cone" `Quick test_cone;
        ] );
      ( "collapse",
        [
          Alcotest.test_case "and gate" `Quick test_collapse_and_gate;
          Alcotest.test_case "protected gates stay distinct" `Quick
            test_collapse_protected;
          Alcotest.test_case "buf/not chain" `Quick
            test_collapse_buf_not_chain;
          Alcotest.test_case "fanout blocks stem fold" `Quick
            test_collapse_fanout_blocks_fold;
          qcheck test_collapse_classes_behave_identically;
        ] );
    ]
