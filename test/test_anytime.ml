module Machine = Stc_fsm.Machine
module Zoo = Stc_fsm.Zoo
module Generate = Stc_fsm.Generate
module Partition = Stc_partition.Partition
module Solver = Stc_core.Solver
module Anytime = Stc_core.Anytime
module Suite = Stc_benchmarks.Suite
module Metrics = Stc_obs.Metrics
module Rng = Stc_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let qcheck = QCheck_alcotest.to_alcotest

(* Small deterministic budgets so the whole file runs in seconds.  No
   wall budget: every stop below is a counter, so results are exactly
   reproducible. *)
let small_config =
  {
    Anytime.default_config with
    Anytime.beam_width = 4;
    moves_per_candidate = 12;
    max_rounds = 40;
    max_evals = 800;
    patience = 8;
    sa_chains = 2;
    sa_steps = 100;
  }

let suite_machine name =
  match Suite.find name with
  | Some spec -> Suite.machine spec
  | None -> Alcotest.failf "unknown suite machine %s" name

(* The jobs-invariance contract: equal cost, equal factor partitions,
   equal XOR fingerprint of the consumed RNG streams. *)
let identical (a : Anytime.result) (b : Anytime.result) =
  Solver.compare_cost a.Anytime.best.Solver.cost b.Anytime.best.Solver.cost = 0
  && a.Anytime.stats.Anytime.rng_fingerprint
     = b.Anytime.stats.Anytime.rng_fingerprint
  && Partition.compare a.Anytime.best.Solver.pi b.Anytime.best.Solver.pi = 0
  && Partition.compare a.Anytime.best.Solver.rho b.Anytime.best.Solver.rho = 0

(* ------------------------------------------------------------------ *)
(* Determinism                                                         *)
(* ------------------------------------------------------------------ *)

let test_seeded_twice_identical () =
  let m = suite_machine "dk16" in
  let r1 = Anytime.search ~config:small_config m in
  let r2 = Anytime.search ~config:small_config m in
  check_bool "same seed, same run" true (identical r1 r2);
  let r3 =
    Anytime.search ~config:{ small_config with Anytime.seed = 2 } m
  in
  check_bool "different seed, different streams" true
    (r1.Anytime.stats.Anytime.rng_fingerprint
    <> r3.Anytime.stats.Anytime.rng_fingerprint)

let test_jobs_invariance () =
  let m = suite_machine "dk16" in
  let r1 = Anytime.search ~config:small_config m in
  List.iter
    (fun jobs ->
      let rn =
        Anytime.search ~config:{ small_config with Anytime.jobs = jobs } m
      in
      check_bool
        (Printf.sprintf "jobs=%d matches jobs=1" jobs)
        true (identical r1 rn))
    [ 2; 4 ]

let test_stats_deterministic () =
  let m = suite_machine "dk512" in
  let r1 = Anytime.search ~config:small_config m in
  let r2 =
    Anytime.search ~config:{ small_config with Anytime.jobs = 3 } m
  in
  check_int "evals agree" r1.Anytime.stats.Anytime.evals
    r2.Anytime.stats.Anytime.evals;
  check_int "feasible agree" r1.Anytime.stats.Anytime.feasible
    r2.Anytime.stats.Anytime.feasible;
  check_int "rounds agree" r1.Anytime.stats.Anytime.rounds
    r2.Anytime.stats.Anytime.rounds;
  check_int "SA acceptances agree" r1.Anytime.stats.Anytime.sa_accepted
    r2.Anytime.stats.Anytime.sa_accepted

(* ------------------------------------------------------------------ *)
(* Incremental closure engine vs the full-recompute oracle             *)
(* ------------------------------------------------------------------ *)

(* The headline contract of the delta evaluator: flipping [incremental]
   changes nothing observable — cost, factors, fingerprint, stats. *)
let test_incremental_matches_full () =
  let machines =
    [ ("dk16", suite_machine "dk16");
      ( "planted:96x4@1",
        match Generate.of_spec "planted:96x4@1" with
        | Some m -> m
        | None -> Alcotest.fail "spec should parse" ) ]
  in
  List.iter
    (fun (name, m) ->
      let inc = Anytime.search ~config:small_config m in
      let full =
        Anytime.search
          ~config:{ small_config with Anytime.incremental = false }
          m
      in
      check_bool (name ^ ": incremental = full oracle") true
        (identical inc full);
      check_int (name ^ ": evals agree") inc.Anytime.stats.Anytime.evals
        full.Anytime.stats.Anytime.evals;
      check_int (name ^ ": feasible agree")
        inc.Anytime.stats.Anytime.feasible full.Anytime.stats.Anytime.feasible)
    machines

(* Jobs invariance across the evaluator switch: the per-domain
   transposition tables and memo caches must be invisible, so even
   incremental jobs=4 equals the full oracle at jobs=1. *)
let test_incremental_jobs_cross () =
  let m = suite_machine "dk16" in
  let full1 =
    Anytime.search
      ~config:{ small_config with Anytime.incremental = false }
      m
  in
  List.iter
    (fun jobs ->
      let inc =
        Anytime.search ~config:{ small_config with Anytime.jobs = jobs } m
      in
      check_bool
        (Printf.sprintf "incremental jobs=%d = full jobs=1" jobs)
        true (identical full1 inc))
    [ 2; 4 ]

(* The closure_* observability contract: delta evals, full fallbacks
   (splits always recompute), dirty-class events and transposition-table
   hits are all recorded. *)
let test_closure_metrics () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let m = suite_machine "dk16" in
  ignore (Anytime.search ~config:small_config m);
  let counter name =
    match Metrics.find name with
    | Some (Metrics.Counter n) -> n
    | _ -> Alcotest.failf "%s not recorded" name
  in
  check_bool "delta closures ran" true (counter "anytime.closure_delta" > 0);
  check_bool "full fallbacks ran (splits)" true
    (counter "anytime.closure_full" > 0);
  check_bool "dirty classes counted" true (counter "anytime.closure_dirty" > 0);
  check_bool "tt hits counted" true (counter "anytime.closure_tt_hits" > 0);
  check_bool "every eval is delta, full, a tt hit, or degenerate" true
    (counter "anytime.closure_delta"
     + counter "anytime.closure_full"
     + counter "anytime.closure_tt_hits"
    <= counter "anytime.evals");
  (* with the full oracle forced, no delta closures happen *)
  Metrics.reset ();
  ignore
    (Anytime.search
       ~config:{ small_config with Anytime.incremental = false }
       m);
  check_int "oracle path never goes delta" 0 (counter "anytime.closure_delta");
  check_bool "oracle path counts full closures" true
    (counter "anytime.closure_full" > 0);
  Metrics.set_enabled false

(* --split-ratio plumbing: 0 disables splits (still valid and
   deterministic), other ratios change the consumed streams. *)
let test_split_ratio () =
  let m = suite_machine "dk16" in
  let run ratio =
    Anytime.search ~config:{ small_config with Anytime.split_ratio = ratio } m
  in
  let merges_only = run 0 in
  check_bool "merges-only run is reproducible" true
    (identical merges_only (run 0));
  check_bool "merges-only validates" true
    (Solver.validate m merges_only.Anytime.best = Ok ());
  let default = run 6 and splitty = run 2 in
  check_bool "ratio 6 = default config" true
    (identical default (Anytime.search ~config:small_config m));
  check_bool "ratio changes the streams" true
    (default.Anytime.stats.Anytime.rng_fingerprint
     <> splitty.Anytime.stats.Anytime.rng_fingerprint
    || default.Anytime.stats.Anytime.rng_fingerprint
       <> merges_only.Anytime.stats.Anytime.rng_fingerprint);
  (* merges-only under the incremental engine still matches the oracle *)
  check_bool "merges-only incremental = full" true
    (identical merges_only
       (Anytime.search
          ~config:
            { small_config with
              Anytime.split_ratio = 0;
              incremental = false
            }
          m))

(* ------------------------------------------------------------------ *)
(* Quality                                                             *)
(* ------------------------------------------------------------------ *)

let test_fig5_reaches_optimum () =
  let m = Zoo.paper_fig5 () in
  let exact = Solver.solve m in
  let r = Anytime.search ~config:small_config m in
  check_int "stochastic tier finds the fig. 5 optimum"
    exact.Solver.best.Solver.cost.Solver.bits
    r.Anytime.best.Solver.cost.Solver.bits

let test_trajectory_monotone () =
  let m = suite_machine "tbk" in
  let r = Anytime.search ~config:small_config m in
  let tr = r.Anytime.stats.Anytime.trajectory in
  check_bool "trajectory nonempty" true (tr <> []);
  (* improvements strictly lower the cost; the final appended
     end-of-run point may only repeat the incumbent *)
  let rec improving = function
    | a :: [ last ] ->
      Solver.compare_cost last.Anytime.cost a.Anytime.cost <= 0
    | a :: (b :: _ as rest) ->
      Solver.compare_cost b.Anytime.cost a.Anytime.cost < 0 && improving rest
    | _ -> true
  in
  check_bool "costs improve along the trajectory" true (improving tr);
  let last = List.nth tr (List.length tr - 1) in
  check_int "last point is the incumbent" 0
    (Solver.compare_cost last.Anytime.cost r.Anytime.best.Solver.cost)

let test_never_worse_than_exact =
  QCheck.Test.make ~count:15
    ~name:"stochastic cost >= exact optimum on small machines"
    QCheck.(pair (int_bound 1000) (int_range 4 8))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let m =
        Generate.random ~rng ~name:"q" ~num_states:n ~num_inputs:4
          ~num_outputs:4 ()
      in
      let exact = Solver.solve m in
      let r = Anytime.search ~config:small_config m in
      Solver.compare_cost exact.Solver.best.Solver.cost
        r.Anytime.best.Solver.cost
      <= 0)

(* ------------------------------------------------------------------ *)
(* Tier dispatch                                                       *)
(* ------------------------------------------------------------------ *)

let test_exact_tier () =
  let m = Zoo.paper_fig5 () in
  let r = Anytime.solve ~config:small_config m in
  check_bool "small machine stays exact" true (r.Anytime.stats.Anytime.tier = Anytime.Exact);
  check_bool "exact stats attached" true (r.Anytime.stats.Anytime.exact <> None);
  let exact = Solver.solve m in
  check_int "same optimum" exact.Solver.best.Solver.cost.Solver.bits
    r.Anytime.best.Solver.cost.Solver.bits

let test_budget_handoff () =
  Metrics.set_enabled true;
  Metrics.reset ();
  let m = suite_machine "dk16" in
  (* a 10-node budget cannot finish dk16's 49k-node search: the exact
     incumbent is handed to the stochastic tier as a seed *)
  let r =
    Anytime.solve
      ~config:{ small_config with Anytime.exact_max_nodes = 10 }
      m
  in
  (match r.Anytime.stats.Anytime.tier with
  | Anytime.Stochastic Anytime.Budget_exhausted -> ()
  | t -> Alcotest.failf "expected budget hand-off, got %a" Anytime.pp_tier t);
  check_bool "exact attempt recorded" true
    (r.Anytime.stats.Anytime.exact <> None);
  (match Metrics.find "solver.anytime_engaged" with
  | Some (Metrics.Counter n) ->
    check_bool "engagement counter bumped" true (n >= 1)
  | _ -> Alcotest.fail "solver.anytime_engaged not recorded");
  Metrics.set_enabled false

let test_too_large_skips_exact () =
  let m = suite_machine "dk16" in
  let r =
    Anytime.solve
      ~config:{ small_config with Anytime.exact_max_states = 8 }
      m
  in
  (match r.Anytime.stats.Anytime.tier with
  | Anytime.Stochastic Anytime.Too_large -> ()
  | t -> Alcotest.failf "expected too-large dispatch, got %a" Anytime.pp_tier t);
  check_bool "exact tier never ran" true (r.Anytime.stats.Anytime.exact = None)

let test_force_stochastic () =
  let m = Zoo.paper_fig5 () in
  let r = Anytime.solve ~config:small_config ~force:true m in
  match r.Anytime.stats.Anytime.tier with
  | Anytime.Stochastic Anytime.Forced -> ()
  | t -> Alcotest.failf "expected forced tier, got %a" Anytime.pp_tier t

(* ------------------------------------------------------------------ *)
(* Scale (one mid-size planted machine, tiny budget)                   *)
(* ------------------------------------------------------------------ *)

let test_planted_beats_trivial () =
  let m =
    match Generate.of_spec "planted:128x4@3" with
    | Some m -> m
    | None -> Alcotest.fail "spec should parse"
  in
  let r =
    Anytime.solve ~config:{ small_config with Anytime.exact_max_states = 64 } m
  in
  check_bool "nontrivial factorization" true
    (not (Solver.is_trivial m r.Anytime.best));
  check_bool "beats doubling the machine" true
    (r.Anytime.best.Solver.cost.Solver.bits
    < 2 * Machine.bits_for m.Machine.num_states)

let () =
  Alcotest.run "stc_anytime"
    [
      ( "determinism",
        [
          Alcotest.test_case "seeded twice identical" `Quick
            test_seeded_twice_identical;
          Alcotest.test_case "jobs invariance" `Quick test_jobs_invariance;
          Alcotest.test_case "stats deterministic" `Quick
            test_stats_deterministic;
        ] );
      ( "incremental",
        [
          Alcotest.test_case "incremental = full oracle" `Quick
            test_incremental_matches_full;
          Alcotest.test_case "jobs cross-invariance" `Quick
            test_incremental_jobs_cross;
          Alcotest.test_case "closure metrics" `Quick test_closure_metrics;
          Alcotest.test_case "split ratio" `Quick test_split_ratio;
        ] );
      ( "quality",
        [
          Alcotest.test_case "fig5 optimum" `Quick test_fig5_reaches_optimum;
          Alcotest.test_case "trajectory monotone" `Quick
            test_trajectory_monotone;
          qcheck test_never_worse_than_exact;
        ] );
      ( "tiers",
        [
          Alcotest.test_case "exact tier" `Quick test_exact_tier;
          Alcotest.test_case "budget hand-off" `Quick test_budget_handoff;
          Alcotest.test_case "too-large dispatch" `Quick
            test_too_large_skips_exact;
          Alcotest.test_case "forced" `Quick test_force_stochastic;
        ] );
      ( "scale",
        [
          Alcotest.test_case "planted beats trivial" `Quick
            test_planted_beats_trivial;
        ] );
    ]
