(* Tests for the shared bit engine (lib/bits).

   The Word tests pin the SWAR kernels against the bit-serial loops they
   replaced at their former call sites (bist parity feedback, encoding
   popcount, faultsim first_lane), verbatim.  Bitvec is checked against a
   naive bool-array spec.  Arena.Stamped's epoch semantics get direct
   unit tests. *)

module Word = Stc_bits.Word
module Bitvec = Stc_bits.Bitvec
module Arena = Stc_bits.Arena
module Rng = Stc_util.Rng

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Word vs the retired bit-serial loops                                *)
(* ------------------------------------------------------------------ *)

(* The parity loop formerly in Bilbo/Lfsr/Misr. *)
let parity_loop v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc lxor (v land 1)) in
  go v 0

(* The popcount loop formerly in Code. *)
let popcount_loop v =
  let rec go v acc = if v = 0 then acc else go (v lsr 1) (acc + (v land 1)) in
  go v 0

(* The lowest-set-bit scan formerly in Engine.first_lane. *)
let ffs_loop w =
  let rec go k w = if w land 1 = 1 then k else go (k + 1) (w lsr 1) in
  go 0 w

let edge_words =
  [ 1; 2; 3; (1 lsl 16) - 1; 1 lsl 16; 1 lsl 31; (1 lsl 48) + 5; 1 lsl 62; max_int; min_int; -1 ]

let test_word_vs_loops () =
  for v = 0 to 4096 do
    Alcotest.(check int) (Printf.sprintf "popcount %d" v) (popcount_loop v) (Word.popcount v);
    Alcotest.(check int) (Printf.sprintf "parity %d" v) (parity_loop v) (Word.parity v);
    if v <> 0 then
      Alcotest.(check int) (Printf.sprintf "ffs %d" v) (ffs_loop v) (Word.ffs v)
  done;
  List.iter
    (fun v ->
      Alcotest.(check int) (Printf.sprintf "popcount %x" v) (popcount_loop v) (Word.popcount v);
      Alcotest.(check int) (Printf.sprintf "parity %x" v) (parity_loop v) (Word.parity v);
      Alcotest.(check int) (Printf.sprintf "ffs %x" v) (ffs_loop v) (Word.ffs v))
    edge_words

let test_word_random =
  QCheck.Test.make ~count:2000 ~name:"Word kernels = bit-serial loops (random words)"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let v = Int64.to_int (Rng.bits64 rng) in
      Word.popcount v = popcount_loop v
      && Word.parity v = parity_loop v
      && (v = 0 || Word.ffs v = ffs_loop v))

let test_word_edges () =
  Alcotest.(check int) "bits" 63 Word.bits;
  Alcotest.(check int) "popcount 0" 0 (Word.popcount 0);
  Alcotest.(check int) "popcount -1" 63 (Word.popcount (-1));
  Alcotest.(check int) "parity 0" 0 (Word.parity 0);
  Alcotest.check_raises "ffs 0" (Invalid_argument "Word.ffs: zero word") (fun () ->
      ignore (Word.ffs 0));
  Alcotest.(check int) "mask 0" 0 (Word.mask 0);
  Alcotest.(check int) "mask 5" 31 (Word.mask 5);
  Alcotest.(check int) "mask bits" (-1) (Word.mask Word.bits);
  Alcotest.check_raises "mask 64" (Invalid_argument "Word.mask: width out of range")
    (fun () -> ignore (Word.mask 64))

(* The two-word lane is a pure composition of single-word operations;
   check it against exactly those, over random and edge word pairs. *)
let test_lane_vs_single_word =
  QCheck.Test.make ~count:2000 ~name:"Word.Lane = composed single-word kernels"
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let w () =
        match Rng.int rng 4 with
        | 0 -> List.nth edge_words (Rng.int rng (List.length edge_words))
        | _ -> Int64.to_int (Rng.bits64 rng)
      in
      let a = w () and b = w () and c = w () and d = w () in
      Word.Lane.popcount2 a b = Word.popcount a + Word.popcount b
      && Word.Lane.diffsub2 a b c d
         = (a land lnot b <> 0 || c land lnot d <> 0)
      && Word.Lane.inter2 a b c d = (a land b <> 0 || c land d <> 0))

let test_lane_edges () =
  Alcotest.(check int) "lane bits" (2 * Word.bits) Word.Lane.bits;
  Alcotest.(check int) "popcount2 -1 -1" 126 (Word.Lane.popcount2 (-1) (-1));
  Alcotest.(check bool) "diffsub2 subset" false (Word.Lane.diffsub2 5 7 8 12);
  Alcotest.(check bool) "diffsub2 spill lo" true (Word.Lane.diffsub2 7 5 8 12);
  Alcotest.(check bool) "diffsub2 spill hi" true (Word.Lane.diffsub2 5 7 12 8);
  Alcotest.(check bool) "inter2 disjoint" false (Word.Lane.inter2 5 2 8 4);
  Alcotest.(check bool) "inter2 hit hi" true (Word.Lane.inter2 5 2 12 4)

(* ------------------------------------------------------------------ *)
(* Bitvec vs a bool-array spec                                         *)
(* ------------------------------------------------------------------ *)

let random_bools rng n = Array.init n (fun _ -> Rng.int rng 2 = 1)

let spec_binop f a b = Array.init (Array.length a) (fun i -> f a.(i) b.(i))

let test_bitvec_algebra =
  QCheck.Test.make ~count:500 ~name:"Bitvec set algebra = bool-array spec"
    QCheck.(pair (int_bound 100000) (int_range 1 200))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let a = random_bools rng n and b = random_bools rng n in
      let va = Bitvec.of_bools a and vb = Bitvec.of_bools b in
      Bitvec.to_bools (Bitvec.union va vb) = spec_binop ( || ) a b
      && Bitvec.to_bools (Bitvec.inter va vb) = spec_binop ( && ) a b
      && Bitvec.to_bools (Bitvec.diff va vb) = spec_binop (fun x y -> x && not y) a b
      && Bitvec.to_bools (Bitvec.symdiff va vb) = spec_binop ( <> ) a b
      && Bitvec.to_bools (Bitvec.compl va) = Array.map not a
      && Bitvec.to_bools va = a)

let count_true a = Array.fold_left (fun acc x -> if x then acc + 1 else acc) 0 a

let test_bitvec_queries =
  QCheck.Test.make ~count:500 ~name:"Bitvec queries = bool-array spec"
    QCheck.(pair (int_bound 100000) (int_range 1 200))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let a = random_bools rng n and b = random_bools rng n in
      let va = Bitvec.of_bools a and vb = Bitvec.of_bools b in
      let spec_first =
        let rec go i = if i >= n then None else if a.(i) then Some i else go (i + 1) in
        go 0
      in
      let members = ref [] in
      Bitvec.iter (fun i -> members := i :: !members) va;
      Bitvec.popcount va = count_true a
      && Bitvec.parity va = count_true a land 1
      && Bitvec.is_empty va = (count_true a = 0)
      && Bitvec.first_set va = spec_first
      && List.rev !members
         = List.filter (fun i -> a.(i)) (List.init n (fun i -> i))
      && Bitvec.fold (fun acc i -> acc + i) 0 va
         = List.fold_left ( + ) 0 (List.filter (fun i -> a.(i)) (List.init n (fun i -> i)))
      && Bitvec.subset (Bitvec.inter va vb) va
      && Bitvec.subset va vb
         = Array.for_all Fun.id (spec_binop (fun x y -> (not x) || y) a b)
      && Bitvec.disjoint va vb
         = (count_true (spec_binop ( && ) a b) = 0)
      && Bitvec.equal va vb = (a = b))

let test_bitvec_units () =
  let v = Bitvec.create 70 in
  Alcotest.(check int) "length" 70 (Bitvec.length v);
  Alcotest.(check bool) "fresh empty" true (Bitvec.is_empty v);
  Bitvec.set v 0;
  Bitvec.set v 63;
  Bitvec.set v 69;
  Alcotest.(check bool) "mem 63" true (Bitvec.mem v 63);
  Alcotest.(check int) "popcount" 3 (Bitvec.popcount v);
  let w = Bitvec.copy v in
  Bitvec.clear w 63;
  Alcotest.(check bool) "copy isolated" true (Bitvec.mem v 63 && not (Bitvec.mem w 63));
  (* complement keeps the tail bits (>= len) zero *)
  let c = Bitvec.compl v in
  Alcotest.(check int) "compl popcount" 67 (Bitvec.popcount c);
  Alcotest.check_raises "set out of range" (Invalid_argument "Bitvec: index out of range")
    (fun () -> Bitvec.set v 70);
  Alcotest.check_raises "mem negative" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.mem v (-1)))

(* ------------------------------------------------------------------ *)
(* Arena                                                               *)
(* ------------------------------------------------------------------ *)

let test_arena_ensure () =
  let a = Array.make 4 7 in
  Alcotest.(check bool) "no growth returns same" true (Arena.ensure a 4 == a);
  let b = Arena.ensure a 5 in
  Alcotest.(check bool) "growth returns fresh" true (b != a);
  Alcotest.(check bool) "at least doubled" true (Array.length b >= 8);
  let c = Arena.ensure_bool [| true |] 3 in
  Alcotest.(check bool) "bool growth" true (Array.length c >= 3)

let test_arena_stamped () =
  let s = Arena.Stamped.create 4 in
  let _ = Arena.Stamped.bump s in
  Alcotest.(check bool) "fresh slot unwritten" true (not (Arena.Stamped.mem s 2));
  Alcotest.(check int) "default read" 42 (Arena.Stamped.get s 2 ~default:42);
  Arena.Stamped.set s 2 9;
  Alcotest.(check bool) "written" true (Arena.Stamped.mem s 2);
  Alcotest.(check int) "read back" 9 (Arena.Stamped.get s 2 ~default:42);
  let _ = Arena.Stamped.bump s in
  Alcotest.(check bool) "bump clears" true (not (Arena.Stamped.mem s 2));
  Alcotest.(check int) "cleared read" 42 (Arena.Stamped.get s 2 ~default:42);
  (* growth discards: grown slots read as unwritten in the current epoch *)
  Arena.Stamped.set s 0 1;
  Arena.Stamped.ensure s 100;
  Alcotest.(check bool) "grown slot unwritten" true (not (Arena.Stamped.mem s 99));
  let _ = Arena.Stamped.bump s in
  Arena.Stamped.set s 99 5;
  Alcotest.(check int) "grown slot writable" 5 (Arena.Stamped.get s 99 ~default:0)

let () =
  Alcotest.run "stc_bits"
    [
      ( "word",
        [
          Alcotest.test_case "kernels vs retired loops (exhaustive small)" `Quick
            test_word_vs_loops;
          qcheck test_word_random;
          Alcotest.test_case "edge cases" `Quick test_word_edges;
          qcheck test_lane_vs_single_word;
          Alcotest.test_case "lane edge cases" `Quick test_lane_edges;
        ] );
      ( "bitvec",
        [
          qcheck test_bitvec_algebra;
          qcheck test_bitvec_queries;
          Alcotest.test_case "units" `Quick test_bitvec_units;
        ] );
      ( "arena",
        [
          Alcotest.test_case "ensure growth" `Quick test_arena_ensure;
          Alcotest.test_case "stamped epochs" `Quick test_arena_stamped;
        ] );
    ]
