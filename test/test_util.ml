module Rng = Stc_util.Rng
module Union_find = Stc_util.Union_find
module Parallel = Stc_util.Parallel

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ------------------------------------------------------------------ *)
(* Rng                                                                 *)
(* ------------------------------------------------------------------ *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check_bool "same stream" true (Rng.bits64 a = Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check_int "different seeds diverge" 0 !same

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    check_bool "in range" true (v >= 0 && v < 17)
  done

let test_rng_int_rejects_nonpositive () =
  let rng = Rng.create 7 in
  Alcotest.check_raises "bound 0" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_covers_range () =
  let rng = Rng.create 3 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  check_bool "all values hit" true (Array.for_all Fun.id seen)

let test_rng_float_unit_interval () =
  let rng = Rng.create 11 in
  for _ = 1 to 1000 do
    let v = Rng.float rng in
    check_bool "in [0,1)" true (v >= 0.0 && v < 1.0)
  done

let test_rng_copy_independent () =
  let a = Rng.create 5 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  check_bool "copy continues identically" true (va = vb);
  ignore (Rng.bits64 a);
  let va = Rng.bits64 a and vb = Rng.bits64 b in
  (* a advanced once more than b, so the streams are now offset *)
  check_bool "streams are offset" true (va <> vb)

let test_rng_split_diverges () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check_bool "split streams differ" true (!same <= 1)

let test_rng_substream_pure () =
  let root = Rng.create 11 in
  let before = Rng.fingerprint root in
  let a = Rng.substream root 0 in
  let _ = Rng.bits64 a in
  check_bool "substream leaves parent untouched" true
    (Rng.fingerprint root = before);
  (* same index twice = same stream; deterministic across calls *)
  let b = Rng.substream root 0 and b' = Rng.substream root 0 in
  for _ = 1 to 32 do
    check_bool "same index, same stream" true (Rng.bits64 b = Rng.bits64 b')
  done

let test_rng_substream_diverges () =
  let root = Rng.create 11 in
  let a = Rng.substream root 0 and b = Rng.substream root 1 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  check_bool "adjacent indices diverge" true (!same <= 1)

let test_rng_fingerprint () =
  let a = Rng.create 3 and b = Rng.create 3 and c = Rng.create 4 in
  check_bool "equal state, equal fingerprint" true
    (Rng.fingerprint a = Rng.fingerprint b);
  check_bool "nonnegative" true (Rng.fingerprint a >= 0 && Rng.fingerprint c >= 0);
  let _ = Rng.bits64 a in
  check_bool "advancing changes the fingerprint" true
    (Rng.fingerprint a <> Rng.fingerprint b)

let test_rng_permutation () =
  let rng = Rng.create 13 in
  for n = 1 to 20 do
    let p = Rng.permutation rng n in
    let seen = Array.make n false in
    Array.iter (fun v -> seen.(v) <- true) p;
    check_bool "is a permutation" true (Array.for_all Fun.id seen)
  done

let test_rng_shuffle_preserves_multiset () =
  let rng = Rng.create 17 in
  let arr = Array.init 50 (fun i -> i mod 7) in
  let sorted_before = Array.copy arr in
  Array.sort compare sorted_before;
  Rng.shuffle rng arr;
  Array.sort compare arr;
  check_bool "multiset preserved" true (arr = sorted_before)

let test_rng_pick_member () =
  let rng = Rng.create 19 in
  let arr = [| 3; 1; 4; 1; 5 |] in
  for _ = 1 to 100 do
    check_bool "picked element present" true (Array.mem (Rng.pick rng arr) arr)
  done

(* ------------------------------------------------------------------ *)
(* Parallel                                                            *)
(* ------------------------------------------------------------------ *)

(* Exact coverage: every index visited exactly once, whatever the
   jobs/chunk combination (including chunk = 1 and jobs > n). *)
let test_parallel_iter_coverage () =
  List.iter
    (fun (n, jobs, chunk) ->
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      Parallel.iter_range ~chunk ~jobs n (fun i -> Atomic.incr hits.(i));
      Array.iteri
        (fun i h ->
          check_int (Printf.sprintf "n=%d jobs=%d chunk=%d i=%d" n jobs chunk i)
            1 (Atomic.get h))
        hits)
    [ (0, 4, 64); (1, 4, 64); (17, 1, 64); (17, 4, 1); (100, 3, 7); (1000, 4, 64);
      (5, 16, 64); (257, 2, 64) ]

let test_parallel_iter_rejects_bad_chunk () =
  Alcotest.check_raises "chunk 0"
    (Invalid_argument "Parallel.iter_range_local: chunk < 1") (fun () ->
      Parallel.iter_range ~chunk:0 ~jobs:2 10 ignore)

(* map_range returns f 0 .. f (n-1) in order, independent of jobs and
   chunk. *)
let test_parallel_map_deterministic () =
  let expected = Parallel.map_range ~jobs:1 100 (fun i -> (i * i) + 1) ~init:0 in
  List.iter
    (fun (jobs, chunk) ->
      let got = Parallel.map_range ~chunk ~jobs 100 (fun i -> (i * i) + 1) ~init:0 in
      check_bool (Printf.sprintf "jobs=%d chunk=%d" jobs chunk) true (got = expected))
    [ (2, 1); (3, 7); (4, 64); (8, 1000) ]

(* iter_range_local: each worker gets its own [local] state, [finish]
   sees every worker's state exactly once, and the per-worker partial
   sums add up to the whole range. *)
let test_parallel_local_state () =
  List.iter
    (fun jobs ->
      let n = 500 in
      let workers = Atomic.make 0 in
      let total = Atomic.make 0 in
      Parallel.iter_range_local ~jobs
        ~local:(fun () ->
          Atomic.incr workers;
          ref 0)
        ~finish:(fun acc -> ignore (Atomic.fetch_and_add total !acc))
        n
        (fun acc i -> acc := !acc + i);
      check_int (Printf.sprintf "sum jobs=%d" jobs) (n * (n - 1) / 2) (Atomic.get total);
      check_bool (Printf.sprintf "workers jobs=%d" jobs) true
        (Atomic.get workers >= 1 && Atomic.get workers <= jobs))
    [ 1; 2; 4 ]

(* The monitor hook: one report per worker, busy time inside the wall,
   grab and item counts consistent with the range - and uninstalling
   restores the unobserved path. *)
let test_parallel_monitor_stats () =
  let stats = ref [] in
  let stats_mutex = Mutex.create () in
  Parallel.set_monitor
    (Some
       (fun s ->
         Mutex.protect stats_mutex (fun () -> stats := s :: !stats)));
  Fun.protect
    ~finally:(fun () -> Parallel.set_monitor None)
    (fun () ->
      let n = 1000 and jobs = 4 and chunk = 64 in
      let visited = Atomic.make 0 in
      Parallel.iter_range ~chunk ~jobs n (fun _ -> Atomic.incr visited);
      check_int "range covered" n (Atomic.get visited);
      let reports = !stats in
      check_bool "one report per worker" true
        (List.length reports >= 1 && List.length reports <= jobs);
      let workers =
        List.sort_uniq compare
          (List.map (fun s -> s.Parallel.worker) reports)
      in
      check_int "worker ids distinct" (List.length reports)
        (List.length workers);
      check_int "items sum to the range" n
        (List.fold_left (fun acc s -> acc + s.Parallel.items) 0 reports);
      List.iter
        (fun s ->
          check_bool "busy within wall" true
            (s.Parallel.busy_ns >= 0
            && s.Parallel.busy_ns <= s.Parallel.stop_ns - s.Parallel.start_ns);
          check_bool "grabs cover items" true
            (s.Parallel.grabs >= (s.Parallel.items + chunk - 1) / chunk))
        reports);
  (* With the monitor cleared nothing reports. *)
  stats := [];
  Parallel.iter_range ~jobs:2 100 ignore;
  check_int "no reports after uninstall" 0 (List.length !stats)

(* ------------------------------------------------------------------ *)
(* Union_find                                                          *)
(* ------------------------------------------------------------------ *)

let test_uf_initial () =
  let uf = Union_find.create 5 in
  check_int "five singletons" 5 (Union_find.count uf);
  check_int "size" 5 (Union_find.size uf);
  check_bool "distinct" false (Union_find.same uf 0 1)

let test_uf_union_count () =
  let uf = Union_find.create 6 in
  check_bool "fresh union" true (Union_find.union uf 0 1);
  check_bool "repeat union" false (Union_find.union uf 1 0);
  check_int "count" 5 (Union_find.count uf);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 1 2);
  check_int "count after chain" 3 (Union_find.count uf);
  check_bool "transitive" true (Union_find.same uf 0 3)

let test_uf_class_map_dense () =
  let uf = Union_find.create 7 in
  ignore (Union_find.union uf 5 6);
  ignore (Union_find.union uf 1 3);
  let cls = Union_find.class_map uf in
  check_int "class of 0 is 0" 0 cls.(0);
  check_bool "1 and 3 same" true (cls.(1) = cls.(3));
  check_bool "5 and 6 same" true (cls.(5) = cls.(6));
  let max_class = Array.fold_left max 0 cls in
  check_int "dense numbering" (Union_find.count uf - 1) max_class

let test_uf_total_merge () =
  let uf = Union_find.create 10 in
  for i = 1 to 9 do
    ignore (Union_find.union uf 0 i)
  done;
  check_int "single set" 1 (Union_find.count uf);
  let cls = Union_find.class_map uf in
  check_bool "all zero" true (Array.for_all (fun c -> c = 0) cls)

let () =
  Alcotest.run "stc_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects non-positive" `Quick
            test_rng_int_rejects_nonpositive;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
          Alcotest.test_case "float unit interval" `Quick test_rng_float_unit_interval;
          Alcotest.test_case "copy independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
          Alcotest.test_case "substream pure" `Quick test_rng_substream_pure;
          Alcotest.test_case "substream diverges" `Quick
            test_rng_substream_diverges;
          Alcotest.test_case "fingerprint" `Quick test_rng_fingerprint;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "shuffle preserves multiset" `Quick
            test_rng_shuffle_preserves_multiset;
          Alcotest.test_case "pick member" `Quick test_rng_pick_member;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "iter_range exact coverage" `Quick
            test_parallel_iter_coverage;
          Alcotest.test_case "iter_range rejects bad chunk" `Quick
            test_parallel_iter_rejects_bad_chunk;
          Alcotest.test_case "map_range deterministic" `Quick
            test_parallel_map_deterministic;
          Alcotest.test_case "iter_range_local per-worker state" `Quick
            test_parallel_local_state;
          Alcotest.test_case "monitor stats" `Quick test_parallel_monitor_stats;
        ] );
      ( "union_find",
        [
          Alcotest.test_case "initial" `Quick test_uf_initial;
          Alcotest.test_case "union and count" `Quick test_uf_union_count;
          Alcotest.test_case "class map dense" `Quick test_uf_class_map_dense;
          Alcotest.test_case "total merge" `Quick test_uf_total_merge;
        ] );
    ]
