module N = Stc_netlist.Netlist
module B = Stc_netlist.Netlist.Builder
module Session = Stc_faultsim.Session
module Engine = Stc_faultsim.Engine
module Seqtest = Stc_faultsim.Seqtest
module Aliasing = Stc_faultsim.Aliasing
module Arch = Stc_faultsim.Arch
module Zoo = Stc_fsm.Zoo
module Suite = Stc_benchmarks.Suite
module Metrics = Stc_obs.Metrics
module Rng = Stc_util.Rng
module Cover = Stc_logic.Cover

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Session plumbing                                                    *)
(* ------------------------------------------------------------------ *)

let test_pack_roundtrip () =
  let cycles = 150 and inputs = 3 in
  let stimuli =
    Array.init cycles (fun c -> Array.init inputs (fun k -> (c + k) land 1))
  in
  let batches = Session.pack stimuli in
  check_int "batch count" 3 (List.length batches);
  List.iteri
    (fun b words ->
      Array.iteri
        (fun k word ->
          for lane = 0 to N.word_bits - 1 do
            let cycle = (b * N.word_bits) + lane in
            if cycle < cycles then
              check_int
                (Printf.sprintf "bit c=%d k=%d" cycle k)
                stimuli.(cycle).(k)
                ((word lsr lane) land 1)
          done)
        words)
    batches

let and_netlist () =
  let b = B.create "and2" in
  let x = B.input b "x" in
  let y = B.input b "y" in
  let a = B.and_ b [ x; y ] in
  B.output b "a" a;
  (B.finish b, a)

let test_run_detects_known_faults () =
  let net, a = and_netlist () in
  (* Exhaustive patterns on 2 inputs. *)
  let stimuli = [| [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |]; [| 1; 1 |] |] in
  let r = Session.run ~label:"and2" net ~stimuli ~observed:[| a |] in
  (* All 10 faults of an AND with fanin-free inputs are testable
     exhaustively: 2 inputs x 2 + output 2 + 2 pins x 2. *)
  check_int "total" 10 r.Session.total;
  check_int "all detected" 10 r.Session.detected;
  check_bool "coverage 1.0" true (r.Session.coverage = 1.0)

let test_run_misses_unapplied_patterns () =
  let net, a = and_netlist () in
  (* Never applying (1,1) leaves the output stuck-at-0 fault untested. *)
  let stimuli = [| [| 0; 0 |]; [| 0; 1 |]; [| 1; 0 |] |] in
  let r = Session.run ~label:"and2" net ~stimuli ~observed:[| a |] in
  check_bool "some fault escapes" true (r.Session.detected < r.Session.total);
  check_bool "sa0 on output undetected" true
    (List.exists
       (fun (f : N.fault) -> f.N.gate = a && f.N.pin = None && not f.N.stuck_at)
       r.Session.undetected)

let test_run_empty_observation_detects_nothing () =
  let net, _ = and_netlist () in
  let stimuli = [| [| 1; 1 |] |] in
  let r = Session.run ~label:"blind" net ~stimuli ~observed:[||] in
  check_int "nothing detected" 0 r.Session.detected

let test_run_sessions_merges () =
  let net, a = and_netlist () in
  let s1 = [| [| 1; 1 |] |] and s2 = [| [| 0; 1 |]; [| 1; 0 |] |] in
  let merged =
    Session.run_sessions ~label:"merge" net
      [ (s1, [| a |]); (s2, [| a |]) ]
  in
  let alone = Session.run ~label:"alone" net ~stimuli:s1 ~observed:[| a |] in
  check_bool "second session adds detections" true
    (merged.Session.detected > alone.Session.detected);
  check_int "undetected + detected = total" merged.Session.total
    (merged.Session.detected + List.length merged.Session.undetected)

let test_fault_on_tags () =
  let f = { N.gate = 7; pin = None; stuck_at = true } in
  check_bool "found" true
    (Session.fault_on f [ ("a", [ 1; 2 ]); ("b", [ 7 ]) ] = Some "b");
  check_bool "missing" true (Session.fault_on f [ ("a", [ 1 ]) ] = None)

(* ------------------------------------------------------------------ *)
(* Architectures (the fig. 1-4 experiment)                             *)
(* ------------------------------------------------------------------ *)

let shiftreg = Zoo.shift_register ~bits:3

let test_fig2_feedback_faults_escape () =
  (* The paper's drawback 3: faults on the feedback lines from R to C are
     not detected by the conventional BIST, since T drives C during the
     self-test. *)
  let built = Arch.conventional_bist shiftreg in
  let report = Arch.grade built in
  let feedback = List.assoc "feedback" built.Arch.tags in
  let r_input = List.assoc "r-input" built.Arch.tags in
  let escaped gate =
    List.length
      (List.filter (fun (f : N.fault) -> f.N.gate = gate) report.Session.undetected)
  in
  List.iter
    (fun g -> check_int "both feedback faults escape" 2 (escaped g))
    feedback;
  List.iter
    (fun g -> check_int "both r faults escape" 2 (escaped g))
    r_input;
  check_bool "coverage below 100%" true (report.Session.coverage < 1.0)

let test_fig4_shiftreg_full_coverage () =
  let built = Arch.pipeline_of_machine shiftreg in
  let report = Arch.grade built in
  check_bool "100% coverage" true (report.Session.coverage = 1.0);
  check_int "3 flip-flops (Table 1)" 3 built.Arch.flipflops

let test_fig3_shiftreg_full_coverage () =
  let built = Arch.doubled shiftreg in
  let report = Arch.grade built in
  check_bool "100% coverage" true (report.Session.coverage = 1.0);
  check_int "6 flip-flops" 6 built.Arch.flipflops

let test_fig4_beats_fig2 () =
  (* The headline comparison, on several machines: the pipeline structure
     has at least the coverage of the conventional BIST and no more
     flip-flops. *)
  List.iter
    (fun machine ->
      let fig2 = Arch.conventional_bist machine in
      let fig4 = Arch.pipeline_of_machine machine in
      let r2 = Arch.grade fig2 and r4 = Arch.grade fig4 in
      check_bool
        (machine.Stc_fsm.Machine.name ^ " coverage")
        true
        (r4.Session.coverage >= r2.Session.coverage);
      check_bool
        (machine.Stc_fsm.Machine.name ^ " flip-flops")
        true
        (fig4.Arch.flipflops <= fig2.Arch.flipflops))
    [ Zoo.paper_fig5 (); shiftreg ]

let test_fig1_has_no_sessions () =
  let built = Arch.conventional shiftreg in
  check_bool "no self-test sessions" true (built.Arch.sessions = []);
  check_int "single register" 3 built.Arch.flipflops;
  check_bool "netlist nonempty" true (N.num_gates built.Arch.netlist > 0)

let test_grade_deterministic () =
  let built = Arch.pipeline_of_machine (Zoo.paper_fig5 ()) in
  let a = Arch.grade built and b = Arch.grade built in
  check_int "same detected" a.Session.detected b.Session.detected;
  check_int "same total" a.Session.total b.Session.total

let test_undetected_by_tag_sums () =
  let built = Arch.conventional_bist (Zoo.paper_fig5 ()) in
  let report = Arch.grade built in
  let sum =
    List.fold_left (fun acc (_, n) -> acc + n) 0
      (Arch.undetected_by_tag built report)
  in
  check_int "tag buckets cover all undetected" (List.length report.Session.undetected) sum

let test_dk27_benchmark_comparison () =
  (* An actual Table-1 machine through the full flow. *)
  let spec = match Suite.find "dk27" with Some s -> s | None -> assert false in
  let machine = Suite.machine spec in
  let fig2 = Arch.conventional_bist machine in
  let fig4 = Arch.pipeline_of_machine machine in
  let r2 = Arch.grade fig2 and r4 = Arch.grade fig4 in
  check_int "fig2 flip-flops = Table 1 conv." spec.Suite.paper.Suite.ff_conventional
    fig2.Arch.flipflops;
  check_int "fig4 flip-flops = Table 1 pipeline" spec.Suite.paper.Suite.ff_pipeline
    fig4.Arch.flipflops;
  check_bool "pipeline coverage at least conventional" true
    (r4.Session.coverage >= r2.Session.coverage)

(* ------------------------------------------------------------------ *)
(* Optimized engine vs the naive reference grader                      *)
(* ------------------------------------------------------------------ *)

let test_first_lane () =
  check_int "bit 0" 0 (Engine.first_lane 1);
  check_int "bit 2" 2 (Engine.first_lane 0b100);
  check_int "mixed" 3 (Engine.first_lane 0b1011000);
  check_bool "zero rejected" true
    (match Engine.first_lane 0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let sorted_faults fs = List.sort compare fs

let check_reports_equal name (a : Session.report) (b : Session.report) =
  check_int (name ^ ": total") a.Session.total b.Session.total;
  check_int (name ^ ": detected") a.Session.detected b.Session.detected;
  check_bool (name ^ ": same undetected set") true
    (sorted_faults a.Session.undetected = sorted_faults b.Session.undetected)

let test_naive_vs_fast_architectures () =
  let dk27 =
    match Suite.find "dk27" with
    | Some s -> Suite.machine s
    | None -> assert false
  in
  List.iter
    (fun machine ->
      List.iter
        (fun (arch_name, build) ->
          let built = build machine in
          let naive = Arch.grade ~naive:true built in
          let name =
            Printf.sprintf "%s/%s" machine.Stc_fsm.Machine.name arch_name
          in
          check_reports_equal (name ^ " jobs=1") naive
            (Arch.grade ~jobs:1 built);
          check_reports_equal (name ^ " jobs=2") naive
            (Arch.grade ~jobs:2 built);
          (* Cycle-accurate mode disables dominance skipping - verdicts
             must still be identical. *)
          check_reports_equal (name ^ " need_cycles") naive
            (Arch.grade ~need_cycles:true built))
        [
          ("fig2", fun m -> Arch.conventional_bist m);
          ("fig4", fun m -> Arch.pipeline_of_machine m);
        ])
    [ Zoo.paper_fig5 (); shiftreg; dk27 ]

(* Randomized cross-check: arbitrary two-level netlists, random stimuli,
   random observation subsets - the collapsed cone-limited grader must
   reproduce the naive grader's report exactly, serial and sharded. *)
let test_random_netlists_equivalent =
  QCheck.Test.make ~count:60 ~name:"naive and optimized graders agree"
    QCheck.(int_bound 1000000)
    (fun seed ->
      let rng = Rng.create seed in
      let num_vars = 2 + Rng.int rng 4 in
      let num_outputs = 1 + Rng.int rng 3 in
      let cube _ =
        let input =
          Array.init num_vars (fun _ ->
              match Rng.int rng 3 with
              | 0 -> Stc_logic.Cube.Zero
              | 1 -> Stc_logic.Cube.One
              | _ -> Stc_logic.Cube.Dc)
        in
        let output = Array.init num_outputs (fun _ -> Rng.bool rng) in
        if not (Array.exists Fun.id output) then output.(0) <- true;
        Stc_logic.Cube.make ~input ~output
      in
      let cover =
        Cover.make ~num_vars ~num_outputs (List.init (1 + Rng.int rng 6) cube)
      in
      let b = B.create "rand" in
      let inputs =
        Array.init num_vars (fun k -> B.input b (Printf.sprintf "x%d" k))
      in
      let outs = B.emit_cover b ~inputs cover in
      Array.iteri (fun o g -> B.output b (Printf.sprintf "y%d" o) g) outs;
      let net = B.finish b in
      let observed =
        Array.of_list
          (List.filteri
             (fun k _ -> k = 0 || Rng.bool rng)
             (Array.to_list (Array.map snd net.N.outputs)))
      in
      let cycles = 1 + Rng.int rng 200 in
      let stimuli =
        Array.init cycles (fun _ ->
            Array.init num_vars (fun _ -> if Rng.bool rng then 1 else 0))
      in
      let naive = Session.run ~naive:true ~label:"na" net ~stimuli ~observed in
      let agree (fast : Session.report) =
        naive.Session.total = fast.Session.total
        && naive.Session.detected = fast.Session.detected
        && sorted_faults naive.Session.undetected
           = sorted_faults fast.Session.undetected
      in
      agree (Session.run ~jobs:1 ~label:"f1" net ~stimuli ~observed)
      && agree (Session.run ~jobs:2 ~label:"f2" net ~stimuli ~observed))

(* First-detection cycles feed the coverage-over-patterns histograms; in
   cycle-accurate mode the optimized grader must produce the identical
   per-cycle distribution, not just the same verdicts. *)
let test_detect_cycles_exact () =
  let net, a = and_netlist () in
  let rng = Rng.create 42 in
  let stimuli =
    Array.init 100 (fun _ ->
        Array.init 2 (fun _ -> if Rng.bool rng then 1 else 0))
  in
  let was = Metrics.enabled () in
  Metrics.set_enabled true;
  Fun.protect ~finally:(fun () -> Metrics.set_enabled was) @@ fun () ->
  let snap () =
    match Metrics.find "faultsim.detect_cycle.cyc" with
    | Some (Metrics.Histogram h) -> h
    | _ -> Alcotest.fail "detect-cycle histogram missing"
  in
  Metrics.reset ();
  let naive =
    Session.run ~naive:true ~label:"cyc" net ~stimuli ~observed:[| a |]
  in
  let h_naive = snap () in
  Metrics.reset ();
  let fast =
    Session.run ~need_cycles:true ~label:"cyc" net ~stimuli ~observed:[| a |]
  in
  let h_fast = snap () in
  check_int "same detected" naive.Session.detected fast.Session.detected;
  check_int "same histogram population" h_naive.Metrics.count
    h_fast.Metrics.count;
  check_bool "identical first-detect distribution" true
    (h_naive.Metrics.counts = h_fast.Metrics.counts
    && h_naive.Metrics.sum = h_fast.Metrics.sum)

let test_seqtest_naive_vs_fast () =
  let naive = Seqtest.run_conventional ~naive:true ~cycles:256 shiftreg in
  let fast = Seqtest.run_conventional ~cycles:256 shiftreg in
  let fast2 = Seqtest.run_conventional ~jobs:2 ~cycles:256 shiftreg in
  check_int "total" naive.Seqtest.total fast.Seqtest.total;
  check_int "detected" naive.Seqtest.detected fast.Seqtest.detected;
  check_bool "identical detection cycles" true
    (naive.Seqtest.detection_cycles = fast.Seqtest.detection_cycles);
  check_bool "identical under jobs=2" true
    (naive.Seqtest.detection_cycles = fast2.Seqtest.detection_cycles)

let test_aliasing_naive_vs_fast () =
  let built = Arch.pipeline_of_machine (Zoo.paper_fig5 ()) in
  let naive = Aliasing.measure ~naive:true ~cycles:128 built in
  let fast = Aliasing.measure ~cycles:128 built in
  let fast2 = Aliasing.measure ~jobs:2 ~cycles:128 built in
  check_int "total" naive.Aliasing.total fast.Aliasing.total;
  check_int "stream" naive.Aliasing.stream_detected fast.Aliasing.stream_detected;
  check_int "signature" naive.Aliasing.signature_detected
    fast.Aliasing.signature_detected;
  check_int "aliased" naive.Aliasing.aliased fast.Aliasing.aliased;
  check_int "stream jobs=2" naive.Aliasing.stream_detected
    fast2.Aliasing.stream_detected;
  check_int "aliased jobs=2" naive.Aliasing.aliased fast2.Aliasing.aliased

let () =
  Alcotest.run "stc_faultsim"
    [
      ( "session",
        [
          Alcotest.test_case "pack roundtrip" `Quick test_pack_roundtrip;
          Alcotest.test_case "detects known faults" `Quick test_run_detects_known_faults;
          Alcotest.test_case "misses unapplied patterns" `Quick
            test_run_misses_unapplied_patterns;
          Alcotest.test_case "empty observation" `Quick
            test_run_empty_observation_detects_nothing;
          Alcotest.test_case "session merge" `Quick test_run_sessions_merges;
          Alcotest.test_case "fault_on tags" `Quick test_fault_on_tags;
        ] );
      ( "architectures",
        [
          Alcotest.test_case "fig2 feedback faults escape" `Quick
            test_fig2_feedback_faults_escape;
          Alcotest.test_case "fig4 shiftreg full coverage" `Quick
            test_fig4_shiftreg_full_coverage;
          Alcotest.test_case "fig3 shiftreg full coverage" `Quick
            test_fig3_shiftreg_full_coverage;
          Alcotest.test_case "fig4 beats fig2" `Quick test_fig4_beats_fig2;
          Alcotest.test_case "fig1 has no sessions" `Quick test_fig1_has_no_sessions;
          Alcotest.test_case "grade deterministic" `Quick test_grade_deterministic;
          Alcotest.test_case "undetected by tag sums" `Quick test_undetected_by_tag_sums;
          Alcotest.test_case "dk27 comparison" `Quick test_dk27_benchmark_comparison;
        ] );
      ( "engine",
        [
          Alcotest.test_case "first_lane" `Quick test_first_lane;
          Alcotest.test_case "naive vs fast on architectures" `Quick
            test_naive_vs_fast_architectures;
          qcheck test_random_netlists_equivalent;
          Alcotest.test_case "detect cycles exact" `Quick
            test_detect_cycles_exact;
          Alcotest.test_case "seqtest naive vs fast" `Quick
            test_seqtest_naive_vs_fast;
          Alcotest.test_case "aliasing naive vs fast" `Quick
            test_aliasing_naive_vs_fast;
        ] );
    ]
