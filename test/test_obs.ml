module Json = Stc_obs.Json
module Metrics = Stc_obs.Metrics
module Trace = Stc_obs.Trace
module Profile = Stc_obs.Profile
module Progress = Stc_obs.Progress

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Each test toggles the global enable flags; restore the disabled
   default so tests stay order-independent. *)
let with_obs f =
  Metrics.set_enabled true;
  Trace.set_enabled true;
  Metrics.reset ();
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Trace.set_enabled false;
      Metrics.reset ();
      Trace.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("str", Json.String "a \"quoted\"\nline\twith \\ specials");
        ("list", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]);
      ]
  in
  List.iter
    (fun pretty ->
      match Json.parse (Json.to_string ~pretty doc) with
      | Ok v -> check_bool "roundtrip equal" true (v = doc)
      | Error msg -> Alcotest.failf "parse failed: %s" msg)
    [ false; true ]

let test_json_parse_escapes () =
  match Json.parse {|{"s": "Aé€😀"}|} with
  | Ok doc ->
    (match Json.member "s" doc with
    | Some (Json.String s) -> check_string "utf8 decode" "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80" s
    | _ -> Alcotest.fail "missing string member")
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_json_float_format () =
  (* Floats must roundtrip and must not print as noise like
     142.07499999999999. *)
  List.iter
    (fun f ->
      let s = Json.to_string (Json.Float f) in
      check_bool
        (Printf.sprintf "roundtrips %s" s)
        true
        (float_of_string s = f))
    [ 142.075; 0.1; 1e-9; 3.141592653589793; 1.0 ];
  check_string "nan is null" "null" (Json.to_string (Json.Float Float.nan))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_disabled_noop () =
  Metrics.reset ();
  let c = Metrics.counter "test.disabled" in
  check_bool "starts disabled" false (Metrics.enabled ());
  Metrics.incr c;
  Metrics.add c 100;
  check_int "disabled bumps ignored" 0 (Metrics.counter_value c)

let test_metrics_counter_exact_across_domains () =
  with_obs @@ fun () ->
  let c = Metrics.counter "test.domains" in
  let per_domain = 50_000 and domains = 4 in
  let worker () =
    for _ = 1 to per_domain do
      Metrics.incr c
    done
  in
  let spawned = List.init domains (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  (* Exactness is the whole point of sharding: no lost updates. *)
  check_int "merged count exact" ((domains + 1) * per_domain)
    (Metrics.counter_value c)

let test_metrics_gauge_and_kind_clash () =
  with_obs @@ fun () ->
  let g = Metrics.gauge "test.gauge" in
  Metrics.set_gauge g 7;
  Metrics.set_gauge g 13;
  check_int "latest wins" 13 (Metrics.gauge_value g);
  check_bool "kind mismatch rejected" true
    (match Metrics.counter "test.gauge" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_metrics_histogram_edges () =
  with_obs @@ fun () ->
  let h = Metrics.histogram ~edges:[| 10; 20; 30 |] "test.hist" in
  (* Buckets are upper-inclusive: v <= edges.(i). *)
  List.iter (Metrics.observe h) [ 1; 10; 11; 20; 30; 31; 1000 ];
  match Metrics.find "test.hist" with
  | Some (Metrics.Histogram snap) ->
    Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 2 |] snap.counts;
    check_int "total count" 7 snap.count;
    check_int "sum" (1 + 10 + 11 + 20 + 30 + 31 + 1000) snap.sum
  | _ -> Alcotest.fail "histogram not in snapshot"

let test_metrics_reset_keeps_registration () =
  with_obs @@ fun () ->
  let c = Metrics.counter "test.reset" in
  Metrics.add c 5;
  Metrics.reset ();
  check_int "zeroed" 0 (Metrics.counter_value c);
  Metrics.incr c;
  check_int "handle still live" 1 (Metrics.counter_value c)

let test_metrics_json_shape () =
  with_obs @@ fun () ->
  let c = Metrics.counter "test.json" in
  Metrics.add c 3;
  let doc = Metrics.to_json () in
  match Json.member "metrics" doc with
  | Some (Json.List entries) ->
    check_bool "our counter serialised" true
      (List.exists
         (fun e ->
           Json.member "name" e = Some (Json.String "test.json")
           && Json.member "value" e = Some (Json.Int 3))
         entries)
  | _ -> Alcotest.fail "to_json missing metrics list"

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_disabled_noop () =
  Trace.reset ();
  check_bool "starts disabled" false (Trace.enabled ());
  let r = Trace.span "ignored" (fun () -> 41 + 1) in
  check_int "thunk result" 42 r;
  check_int "no events buffered" 0 (List.length (Trace.events ()))

let test_trace_span_balance () =
  with_obs @@ fun () ->
  let r =
    Trace.span ~cat:"t" "outer" @@ fun () ->
    Trace.span ~cat:"t" "inner" (fun () -> ());
    Trace.instant "tick";
    7
  in
  check_int "result" 7 r;
  let events = Trace.events () in
  let count ph = List.length (List.filter (fun e -> e.Trace.phase = ph) events) in
  check_int "begins" 2 (count Trace.Begin);
  check_int "ends" 2 (count Trace.End);
  check_int "instants" 1 (count Trace.Instant);
  let totals = Trace.phase_totals () in
  check_bool "outer >= inner" true
    (List.assoc "outer" totals >= List.assoc "inner" totals)

let test_trace_span_on_exception () =
  with_obs @@ fun () ->
  (try Trace.span "boom" (fun () -> failwith "boom") with Failure _ -> ());
  let events = Trace.events () in
  check_int "end emitted despite raise" 2 (List.length events)

let test_trace_chrome_json_wellformed () =
  with_obs @@ fun () ->
  Trace.span ~cat:"t" "a" (fun () -> Trace.instant "mark");
  let doc = Trace.to_chrome_json () in
  (* Serialise and parse back: the file must be loadable JSON. *)
  match Json.parse (Json.to_string doc) with
  | Error msg -> Alcotest.failf "chrome json does not parse: %s" msg
  | Ok parsed -> (
    match Json.member "traceEvents" parsed with
    | Some (Json.List evs) ->
      check_int "three events" 3 (List.length evs);
      List.iter
        (fun e ->
          List.iter
            (fun key ->
              check_bool (key ^ " present") true (Json.member key e <> None))
            [ "name"; "ph"; "ts"; "pid"; "tid" ])
        evs
    | _ -> Alcotest.fail "missing traceEvents")

let test_trace_multidomain_events () =
  with_obs @@ fun () ->
  let worker () = Trace.span "worker" (fun () -> ()) in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  Trace.span "main" (fun () -> ());
  let events = Trace.events () in
  check_int "all buffers merged" 6 (List.length events);
  let doms =
    List.sort_uniq compare (List.map (fun e -> e.Trace.dom) events)
  in
  check_bool "distinct domain ids" true (List.length doms >= 2);
  (* Sorted by timestamp. *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.Trace.ts_ns <= b.Trace.ts_ns && monotone rest
    | _ -> true
  in
  check_bool "sorted by ts" true (monotone events)

let test_trace_gc_args () =
  with_obs @@ fun () ->
  Trace.span "alloc" (fun () ->
      ignore (Sys.opaque_identity (Array.make 100_000 0.0)));
  let ends =
    List.filter (fun e -> e.Trace.phase = Trace.End) (Trace.events ())
  in
  check_int "one end event" 1 (List.length ends);
  (match (List.hd ends).Trace.gc with
  | None -> Alcotest.fail "End event carries no gc delta"
  | Some d ->
    check_bool "allocation observed" true
      (d.Trace.minor_words + d.Trace.major_words > 0);
    check_bool "heap gauge positive" true (d.Trace.heap_words > 0));
  (* The delta also feeds the obs.gc.* family: words land in counters,
     the end-of-span heap in a high-water gauge. *)
  let counter name =
    match Metrics.find name with Some (Metrics.Counter n) -> n | _ -> -1
  in
  check_bool "obs.gc.minor_words counted" true
    (counter "obs.gc.minor_words" > 0);
  (match Metrics.find "obs.gc.max_heap_words" with
  | Some (Metrics.Gauge g) -> check_bool "heap gauge raised" true (g > 0)
  | _ -> Alcotest.fail "obs.gc.max_heap_words missing");
  (* Chrome serialisation exposes the delta as args on the End event. *)
  match Json.member "traceEvents" (Trace.to_chrome_json ()) with
  | Some (Json.List evs) ->
    check_bool "args on an End event" true
      (List.exists
         (fun e ->
           Json.member "ph" e = Some (Json.String "E")
           && match Json.member "args" e with
              | Some (Json.Obj fields) -> List.mem_assoc "minor_words" fields
              | _ -> false)
         evs)
  | _ -> Alcotest.fail "missing traceEvents"

let test_trace_gc_outermost_only () =
  with_obs @@ fun () ->
  Trace.span "outer" (fun () ->
      Trace.span "inner" (fun () ->
          (* Small boxed allocations: these land on the minor heap (a
             large array would go straight to the major heap and leave
             the minor delta at zero). *)
          for i = 1 to 10_000 do
            ignore (Sys.opaque_identity (ref i))
          done));
  let counter name =
    match Metrics.find name with Some (Metrics.Counter n) -> n | _ -> 0
  in
  let total = counter "obs.gc.minor_words" in
  (* The inner span's words are inside the outer delta too; charging both
     would double-count, so only the outermost span feeds the counter. *)
  let ends =
    List.filter_map
      (fun e -> if e.Trace.phase = Trace.End then e.Trace.gc else None)
      (Trace.events ())
  in
  check_int "two deltas recorded" 2 (List.length ends);
  let sum =
    List.fold_left (fun acc d -> acc + d.Trace.minor_words) 0 ends
  in
  check_bool "counter below the double-counted sum" true (total < sum);
  let outer_delta =
    List.fold_left (fun acc d -> max acc d.Trace.minor_words) 0 ends
  in
  check_int "counter equals the outermost delta" outer_delta total

let test_trace_live_stacks () =
  with_obs @@ fun () ->
  let observed = ref [] in
  Trace.span "outer" (fun () ->
      Trace.span "inner" (fun () -> observed := Trace.live_stacks ()));
  (match List.assoc_opt (Domain.self () :> int) !observed with
  | Some stack -> Alcotest.(check (list string)) "nested stack, outermost first"
      [ "outer"; "inner" ] stack
  | None -> Alcotest.fail "own domain missing from live_stacks");
  check_bool "stack popped after spans" true
    (List.assoc_opt (Domain.self () :> int) (Trace.live_stacks ()) = None)

(* S3: the JSONL sink must never interleave or truncate lines, however
   many domains emitted spans concurrently — every line a complete event
   object, event counts exact, names intact (quotes, newlines, ';'). *)
let test_trace_jsonl_multidomain_integrity () =
  with_obs @@ fun () ->
  let domains = 4 and spans_per_domain = 500 in
  let nasty = [| "plain"; "has \"quotes\""; "new\nline"; "semi;colon \t" |] in
  let worker k () =
    for i = 1 to spans_per_domain do
      Trace.span ~cat:"stress" nasty.((k + i) mod Array.length nasty)
        (fun () -> ())
    done
  in
  let spawned = List.init domains (fun k -> Domain.spawn (worker k)) in
  worker domains ();
  List.iter Domain.join spawned;
  let path = Filename.temp_file "stc_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.write path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check_int "one line per event"
        ((domains + 1) * spans_per_domain * 2)
        (List.length lines);
      let names = Hashtbl.create 16 in
      List.iter
        (fun line ->
          match Json.parse line with
          | Error msg -> Alcotest.failf "unparseable line %S: %s" line msg
          | Ok e -> (
            match Json.member "name" e with
            | Some (Json.String n) ->
              Hashtbl.replace names n
                (1 + Option.value ~default:0 (Hashtbl.find_opt names n))
            | _ -> Alcotest.fail "line without a name"))
        lines;
      Array.iter
        (fun n ->
          check_bool (Printf.sprintf "name %S survived" n) true
            (Hashtbl.mem names n))
        nasty)

(* ------------------------------------------------------------------ *)
(* Profile                                                             *)
(* ------------------------------------------------------------------ *)

let test_profile_smoke () =
  check_bool "not running" false (Profile.running ());
  Profile.start ~hz:500 ();
  check_bool "running" true (Profile.running ());
  check_bool "sampling flag set" true (Trace.sampling ());
  (* Busy-loop inside spans long enough for the ticker to catch us. *)
  let t0 = Unix.gettimeofday () in
  Trace.span "prof_outer" (fun () ->
      Trace.span "prof_inner" (fun () ->
          while Unix.gettimeofday () -. t0 < 0.1 do
            ignore (Sys.opaque_identity (List.init 50 Fun.id))
          done));
  let r = Profile.stop () in
  check_bool "stopped" false (Profile.running ());
  check_bool "sampling flag cleared" false (Trace.sampling ());
  check_int "hz recorded" 500 r.Profile.hz;
  check_bool "took samples" true (r.Profile.samples > 0);
  check_bool "counts sum to samples" true
    (List.fold_left (fun acc (_, c) -> acc + c) 0 r.Profile.folded
    = r.Profile.samples);
  check_bool "inner stack observed" true
    (List.exists
       (fun (stack, _) -> stack = [ "prof_outer"; "prof_inner" ])
       r.Profile.folded);
  (* self/total: the leaf gets the self samples; the root's total covers
     every sample (all stacks here are rooted at prof_outer). *)
  let st = Profile.self_total r in
  (match List.find_opt (fun (n, _, _) -> n = "prof_outer") st with
  | Some (_, _, total) -> check_int "root total = samples" r.Profile.samples total
  | None -> Alcotest.fail "prof_outer missing from self_total");
  (* And the folded file round-trips through the writer. *)
  let text = Profile.to_folded_string r in
  match Profile.parse_folded text with
  | Ok r' -> check_bool "file roundtrip" true (r' = r)
  | Error msg -> Alcotest.failf "parse_folded failed: %s" msg

let test_profile_double_start_rejected () =
  Profile.start ();
  let rejected =
    match Profile.start () with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  ignore (Profile.stop ());
  check_bool "second start rejected" true rejected

(* S4: QCheck properties for the folded-stack encoder. *)
let frame_gen =
  QCheck.Gen.(
    string_size ~gen:(map Char.chr (int_range 1 126)) (int_range 1 12))

let arbitrary_frame =
  QCheck.make ~print:(Printf.sprintf "%S") frame_gen

let qcheck_escape_roundtrip =
  QCheck.Test.make ~name:"escape_frame roundtrips any name" ~count:500
    arbitrary_frame (fun s ->
      let e = Profile.escape_frame s in
      (* The escaped form must be safe to embed in a folded line. *)
      String.for_all
        (fun c -> not (List.mem c [ ';'; ' '; '\t'; '\n'; '\r' ]))
        e
      && Profile.unescape_frame e = s)

let arbitrary_report =
  let open QCheck in
  let stack_gen =
    Gen.(list_size (int_range 1 4) frame_gen)
  in
  let folded_gen =
    Gen.(
      list_size (int_range 1 8) (pair stack_gen (int_range 1 1000))
      |> map (fun entries ->
             (* Distinct stacks only: parse maps key -> count. *)
             let seen = Hashtbl.create 8 in
             List.filter
               (fun (stack, _) ->
                 if Hashtbl.mem seen stack then false
                 else begin
                   Hashtbl.add seen stack ();
                   true
                 end)
               entries))
  in
  let report_gen =
    Gen.(
      map2
        (fun folded (hz, ticks) ->
          let samples =
            List.fold_left (fun acc (_, c) -> acc + c) 0 folded
          in
          {
            Profile.hz;
            samples;
            ticks = samples + ticks;
            wall_s = float_of_int samples /. float_of_int hz;
            folded;
          })
        folded_gen
        (pair (int_range 1 1000) (int_range 0 50)))
  in
  make
    ~print:(fun r -> Profile.to_folded_string r)
    report_gen

let qcheck_folded_roundtrip =
  QCheck.Test.make ~name:"folded file roundtrips exactly" ~count:200
    arbitrary_report (fun r ->
      match Profile.parse_folded (Profile.to_folded_string r) with
      | Ok r' -> r' = r
      | Error _ -> false)

let qcheck_folded_counts_sum =
  QCheck.Test.make ~name:"parsed counts sum to the header's samples"
    ~count:200 arbitrary_report (fun r ->
      match Profile.parse_folded (Profile.to_folded_string r) with
      | Ok r' ->
        List.fold_left (fun acc (_, c) -> acc + c) 0 r'.Profile.folded
        = r'.Profile.samples
      | Error _ -> false)

(* ------------------------------------------------------------------ *)
(* Progress styles                                                     *)
(* ------------------------------------------------------------------ *)

let with_progress_output f =
  let path = Filename.temp_file "stc_progress" ".txt" in
  let out = open_out path in
  Fun.protect
    ~finally:(fun () ->
      (try close_out out with Sys_error _ -> ());
      Sys.remove path)
    (fun () ->
      Progress.set_enabled true;
      Fun.protect
        ~finally:(fun () -> Progress.set_enabled false)
        (fun () ->
          f out;
          close_out out;
          let ic = open_in path in
          let text =
            really_input_string ic (in_channel_length ic)
          in
          close_in ic;
          text))

let test_progress_plain_on_files () =
  let text =
    with_progress_output (fun out ->
        let p =
          Progress.create ~interval:0.0 ~out ~label:"t"
            ~render:(fun () -> "state A") ()
        in
        check_bool "files auto-detect Plain" true (Progress.style p = Progress.Plain);
        Progress.tick p;
        Progress.force p)
  in
  check_bool "no carriage returns" true (not (String.contains text '\r'));
  check_bool "line-per-update" true (String.contains text '\n')

let test_progress_ansi_override () =
  let text =
    with_progress_output (fun out ->
        let p =
          Progress.create ~interval:0.0 ~out ~style:Progress.Ansi ~label:"t"
            ~render:(fun () -> "state B") ()
        in
        Progress.tick p;
        Progress.force p)
  in
  check_bool "redraws with \\r" true (String.contains text '\r')

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "errors" `Quick test_json_parse_errors;
          Alcotest.test_case "float format" `Quick test_json_float_format;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled noop" `Quick test_metrics_disabled_noop;
          Alcotest.test_case "exact across domains" `Quick
            test_metrics_counter_exact_across_domains;
          Alcotest.test_case "gauge + kind clash" `Quick
            test_metrics_gauge_and_kind_clash;
          Alcotest.test_case "histogram edges" `Quick
            test_metrics_histogram_edges;
          Alcotest.test_case "reset keeps registration" `Quick
            test_metrics_reset_keeps_registration;
          Alcotest.test_case "json shape" `Quick test_metrics_json_shape;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled noop" `Quick test_trace_disabled_noop;
          Alcotest.test_case "span balance" `Quick test_trace_span_balance;
          Alcotest.test_case "span on exception" `Quick
            test_trace_span_on_exception;
          Alcotest.test_case "chrome json" `Quick
            test_trace_chrome_json_wellformed;
          Alcotest.test_case "multi-domain" `Quick test_trace_multidomain_events;
          Alcotest.test_case "gc args" `Quick test_trace_gc_args;
          Alcotest.test_case "gc outermost only" `Quick
            test_trace_gc_outermost_only;
          Alcotest.test_case "live stacks" `Quick test_trace_live_stacks;
          Alcotest.test_case "jsonl multi-domain integrity" `Quick
            test_trace_jsonl_multidomain_integrity;
        ] );
      ( "profile",
        [
          Alcotest.test_case "smoke" `Quick test_profile_smoke;
          Alcotest.test_case "double start rejected" `Quick
            test_profile_double_start_rejected;
          QCheck_alcotest.to_alcotest qcheck_escape_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_folded_roundtrip;
          QCheck_alcotest.to_alcotest qcheck_folded_counts_sum;
        ] );
      ( "progress",
        [
          Alcotest.test_case "plain on files" `Quick test_progress_plain_on_files;
          Alcotest.test_case "ansi override" `Quick test_progress_ansi_override;
        ] );
    ]
