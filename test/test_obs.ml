module Json = Stc_obs.Json
module Metrics = Stc_obs.Metrics
module Trace = Stc_obs.Trace

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* Each test toggles the global enable flags; restore the disabled
   default so tests stay order-independent. *)
let with_obs f =
  Metrics.set_enabled true;
  Trace.set_enabled true;
  Metrics.reset ();
  Trace.reset ();
  Fun.protect
    ~finally:(fun () ->
      Metrics.set_enabled false;
      Trace.set_enabled false;
      Metrics.reset ();
      Trace.reset ())
    f

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("flag", Json.Bool true);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("str", Json.String "a \"quoted\"\nline\twith \\ specials");
        ("list", Json.List [ Json.Int 1; Json.Obj []; Json.List [] ]);
      ]
  in
  List.iter
    (fun pretty ->
      match Json.parse (Json.to_string ~pretty doc) with
      | Ok v -> check_bool "roundtrip equal" true (v = doc)
      | Error msg -> Alcotest.failf "parse failed: %s" msg)
    [ false; true ]

let test_json_parse_escapes () =
  match Json.parse {|{"s": "Aé€😀"}|} with
  | Ok doc ->
    (match Json.member "s" doc with
    | Some (Json.String s) -> check_string "utf8 decode" "A\xc3\xa9\xe2\x82\xac\xf0\x9f\x98\x80" s
    | _ -> Alcotest.fail "missing string member")
  | Error msg -> Alcotest.failf "parse failed: %s" msg

let test_json_parse_errors () =
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted malformed input %S" s
      | Error _ -> ())
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_json_float_format () =
  (* Floats must roundtrip and must not print as noise like
     142.07499999999999. *)
  List.iter
    (fun f ->
      let s = Json.to_string (Json.Float f) in
      check_bool
        (Printf.sprintf "roundtrips %s" s)
        true
        (float_of_string s = f))
    [ 142.075; 0.1; 1e-9; 3.141592653589793; 1.0 ];
  check_string "nan is null" "null" (Json.to_string (Json.Float Float.nan))

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_metrics_disabled_noop () =
  Metrics.reset ();
  let c = Metrics.counter "test.disabled" in
  check_bool "starts disabled" false (Metrics.enabled ());
  Metrics.incr c;
  Metrics.add c 100;
  check_int "disabled bumps ignored" 0 (Metrics.counter_value c)

let test_metrics_counter_exact_across_domains () =
  with_obs @@ fun () ->
  let c = Metrics.counter "test.domains" in
  let per_domain = 50_000 and domains = 4 in
  let worker () =
    for _ = 1 to per_domain do
      Metrics.incr c
    done
  in
  let spawned = List.init domains (fun _ -> Domain.spawn worker) in
  worker ();
  List.iter Domain.join spawned;
  (* Exactness is the whole point of sharding: no lost updates. *)
  check_int "merged count exact" ((domains + 1) * per_domain)
    (Metrics.counter_value c)

let test_metrics_gauge_and_kind_clash () =
  with_obs @@ fun () ->
  let g = Metrics.gauge "test.gauge" in
  Metrics.set_gauge g 7;
  Metrics.set_gauge g 13;
  check_int "latest wins" 13 (Metrics.gauge_value g);
  check_bool "kind mismatch rejected" true
    (match Metrics.counter "test.gauge" with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_metrics_histogram_edges () =
  with_obs @@ fun () ->
  let h = Metrics.histogram ~edges:[| 10; 20; 30 |] "test.hist" in
  (* Buckets are upper-inclusive: v <= edges.(i). *)
  List.iter (Metrics.observe h) [ 1; 10; 11; 20; 30; 31; 1000 ];
  match Metrics.find "test.hist" with
  | Some (Metrics.Histogram snap) ->
    Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 2 |] snap.counts;
    check_int "total count" 7 snap.count;
    check_int "sum" (1 + 10 + 11 + 20 + 30 + 31 + 1000) snap.sum
  | _ -> Alcotest.fail "histogram not in snapshot"

let test_metrics_reset_keeps_registration () =
  with_obs @@ fun () ->
  let c = Metrics.counter "test.reset" in
  Metrics.add c 5;
  Metrics.reset ();
  check_int "zeroed" 0 (Metrics.counter_value c);
  Metrics.incr c;
  check_int "handle still live" 1 (Metrics.counter_value c)

let test_metrics_json_shape () =
  with_obs @@ fun () ->
  let c = Metrics.counter "test.json" in
  Metrics.add c 3;
  let doc = Metrics.to_json () in
  match Json.member "metrics" doc with
  | Some (Json.List entries) ->
    check_bool "our counter serialised" true
      (List.exists
         (fun e ->
           Json.member "name" e = Some (Json.String "test.json")
           && Json.member "value" e = Some (Json.Int 3))
         entries)
  | _ -> Alcotest.fail "to_json missing metrics list"

(* ------------------------------------------------------------------ *)
(* Trace                                                               *)
(* ------------------------------------------------------------------ *)

let test_trace_disabled_noop () =
  Trace.reset ();
  check_bool "starts disabled" false (Trace.enabled ());
  let r = Trace.span "ignored" (fun () -> 41 + 1) in
  check_int "thunk result" 42 r;
  check_int "no events buffered" 0 (List.length (Trace.events ()))

let test_trace_span_balance () =
  with_obs @@ fun () ->
  let r =
    Trace.span ~cat:"t" "outer" @@ fun () ->
    Trace.span ~cat:"t" "inner" (fun () -> ());
    Trace.instant "tick";
    7
  in
  check_int "result" 7 r;
  let events = Trace.events () in
  let count ph = List.length (List.filter (fun e -> e.Trace.phase = ph) events) in
  check_int "begins" 2 (count Trace.Begin);
  check_int "ends" 2 (count Trace.End);
  check_int "instants" 1 (count Trace.Instant);
  let totals = Trace.phase_totals () in
  check_bool "outer >= inner" true
    (List.assoc "outer" totals >= List.assoc "inner" totals)

let test_trace_span_on_exception () =
  with_obs @@ fun () ->
  (try Trace.span "boom" (fun () -> failwith "boom") with Failure _ -> ());
  let events = Trace.events () in
  check_int "end emitted despite raise" 2 (List.length events)

let test_trace_chrome_json_wellformed () =
  with_obs @@ fun () ->
  Trace.span ~cat:"t" "a" (fun () -> Trace.instant "mark");
  let doc = Trace.to_chrome_json () in
  (* Serialise and parse back: the file must be loadable JSON. *)
  match Json.parse (Json.to_string doc) with
  | Error msg -> Alcotest.failf "chrome json does not parse: %s" msg
  | Ok parsed -> (
    match Json.member "traceEvents" parsed with
    | Some (Json.List evs) ->
      check_int "three events" 3 (List.length evs);
      List.iter
        (fun e ->
          List.iter
            (fun key ->
              check_bool (key ^ " present") true (Json.member key e <> None))
            [ "name"; "ph"; "ts"; "pid"; "tid" ])
        evs
    | _ -> Alcotest.fail "missing traceEvents")

let test_trace_multidomain_events () =
  with_obs @@ fun () ->
  let worker () = Trace.span "worker" (fun () -> ()) in
  let d1 = Domain.spawn worker and d2 = Domain.spawn worker in
  Domain.join d1;
  Domain.join d2;
  Trace.span "main" (fun () -> ());
  let events = Trace.events () in
  check_int "all buffers merged" 6 (List.length events);
  let doms =
    List.sort_uniq compare (List.map (fun e -> e.Trace.dom) events)
  in
  check_bool "distinct domain ids" true (List.length doms >= 2);
  (* Sorted by timestamp. *)
  let rec monotone = function
    | a :: (b :: _ as rest) -> a.Trace.ts_ns <= b.Trace.ts_ns && monotone rest
    | _ -> true
  in
  check_bool "sorted by ts" true (monotone events)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "escapes" `Quick test_json_parse_escapes;
          Alcotest.test_case "errors" `Quick test_json_parse_errors;
          Alcotest.test_case "float format" `Quick test_json_float_format;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled noop" `Quick test_metrics_disabled_noop;
          Alcotest.test_case "exact across domains" `Quick
            test_metrics_counter_exact_across_domains;
          Alcotest.test_case "gauge + kind clash" `Quick
            test_metrics_gauge_and_kind_clash;
          Alcotest.test_case "histogram edges" `Quick
            test_metrics_histogram_edges;
          Alcotest.test_case "reset keeps registration" `Quick
            test_metrics_reset_keeps_registration;
          Alcotest.test_case "json shape" `Quick test_metrics_json_shape;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disabled noop" `Quick test_trace_disabled_noop;
          Alcotest.test_case "span balance" `Quick test_trace_span_balance;
          Alcotest.test_case "span on exception" `Quick
            test_trace_span_on_exception;
          Alcotest.test_case "chrome json" `Quick
            test_trace_chrome_json_wellformed;
          Alcotest.test_case "multi-domain" `Quick test_trace_multidomain_events;
        ] );
    ]
