module Machine = Stc_fsm.Machine
module Kiss = Stc_fsm.Kiss
module Reach = Stc_fsm.Reach
module Equiv = Stc_fsm.Equiv
module Zoo = Stc_fsm.Zoo
module Generate = Stc_fsm.Generate
module Dot = Stc_fsm.Dot
module Partition = Stc_partition.Partition
module Pair = Stc_partition.Pair
module Rng = Stc_util.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Machine                                                             *)
(* ------------------------------------------------------------------ *)

let test_bits_for () =
  List.iter
    (fun (n, bits) -> check_int (Printf.sprintf "bits_for %d" n) bits (Machine.bits_for n))
    [ (1, 0); (2, 1); (3, 2); (4, 2); (5, 3); (8, 3); (9, 4); (16, 4); (27, 5); (32, 5) ]

let test_make_validates_dimensions () =
  let attempt () =
    ignore
      (Machine.make ~name:"bad" ~num_states:2 ~num_inputs:2 ~num_outputs:1
         ~next:[| [| 0; 1 |] |]
         ~output:[| [| 0; 0 |]; [| 0; 0 |] |]
         ())
  in
  check_bool "wrong row count rejected" true
    (match attempt () with exception Invalid_argument _ -> true | () -> false)

let test_make_validates_range () =
  let attempt () =
    ignore
      (Machine.make ~name:"bad" ~num_states:2 ~num_inputs:1 ~num_outputs:1
         ~next:[| [| 2 |]; [| 0 |] |]
         ~output:[| [| 0 |]; [| 0 |] |]
         ())
  in
  check_bool "next out of range rejected" true
    (match attempt () with exception Invalid_argument _ -> true | () -> false)

let test_make_validates_reset () =
  let attempt () =
    ignore
      (Machine.make ~name:"bad" ~num_states:2 ~num_inputs:1 ~num_outputs:1
         ~next:[| [| 0 |]; [| 0 |] |]
         ~output:[| [| 0 |]; [| 0 |] |]
         ~reset:5 ())
  in
  check_bool "reset out of range rejected" true
    (match attempt () with exception Invalid_argument _ -> true | () -> false)

let test_make_copies_tables () =
  let next = [| [| 0 |]; [| 0 |] |] and output = [| [| 0 |]; [| 0 |] |] in
  let m =
    Machine.make ~name:"copy" ~num_states:2 ~num_inputs:1 ~num_outputs:1 ~next
      ~output ()
  in
  next.(0).(0) <- 1;
  check_int "internal table unaffected" 0 (Machine.delta m 0 0)

let test_fig5_table () =
  let m = Zoo.paper_fig5 () in
  (* Row s1: 1 -> 3/1, 0 -> 1/1 (paper's fig. 5). *)
  check_int "delta(s1,1)" 2 (Machine.delta m 0 1);
  check_int "lambda(s1,1)" 1 (Machine.lambda m 0 1);
  check_int "delta(s1,0)" 0 (Machine.delta m 0 0);
  check_int "delta(s2,1)" 1 (Machine.delta m 1 1);
  check_int "lambda(s2,1)" 0 (Machine.lambda m 1 1);
  check_int "delta(s4,0)" 1 (Machine.delta m 3 0);
  check_int "lambda(s4,0)" 1 (Machine.lambda m 3 0)

let test_fig5_simulation () =
  let m = Zoo.paper_fig5 () in
  (* From s1: 1/1 -> s3, 1/1 -> s1, 0/1 -> s1. *)
  let outputs, final = Machine.simulate m [ 1; 1; 0 ] in
  check_bool "outputs" true (outputs = [ 1; 1; 1 ]);
  check_int "final state" 0 final

let test_run_from_state () =
  let m = Zoo.paper_fig5 () in
  let outputs, final = Machine.run m ~start:1 [ 0; 0 ] in
  (* s2 -0/0-> s4 -0/1-> s2 *)
  check_bool "outputs" true (outputs = [ 0; 1 ]);
  check_int "final" 1 final

let test_relabel_behaviour () =
  let m = Zoo.paper_fig5 () in
  let m' = Machine.relabel_states m [| 2; 0; 3; 1 |] in
  check_bool "behaviourally equal" true (Machine.equal_behaviour m m');
  check_int "reset follows" 2 m'.Machine.reset

let test_relabel_rejects_non_permutation () =
  let m = Zoo.paper_fig5 () in
  check_bool "rejected" true
    (match Machine.relabel_states m [| 0; 0; 1; 2 |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_equal_behaviour_negative () =
  let m = Zoo.paper_fig5 () in
  let output = Array.map Array.copy m.Machine.output in
  output.(0).(0) <- 0;
  let m' =
    Machine.make ~name:"tweaked" ~num_states:4 ~num_inputs:2 ~num_outputs:2
      ~next:m.Machine.next ~output
      ~output_names:m.Machine.output_names ()
  in
  check_bool "differs" false (Machine.equal_behaviour m m')

let test_iter_transitions_count () =
  let m = Zoo.paper_fig5 () in
  let count = ref 0 in
  Machine.iter_transitions m (fun _ _ _ _ -> incr count);
  check_int "4 states x 2 inputs" 8 !count

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_pp_contains_cells () =
  let s = Machine.to_string (Zoo.paper_fig5 ()) in
  check_bool "mentions machine name" true (contains s "fig5");
  check_bool "contains s3/1 cell" true (contains s "s3/1")

let test_flipflops_conventional () =
  check_int "fig5" 4 (Machine.flipflops_conventional (Zoo.paper_fig5 ()));
  check_int "shiftreg" 6
    (Machine.flipflops_conventional (Zoo.shift_register ~bits:3))

(* ------------------------------------------------------------------ *)
(* Zoo semantics                                                       *)
(* ------------------------------------------------------------------ *)

let test_shiftreg_semantics =
  QCheck.Test.make ~count:100 ~name:"shift register delays input by 3"
    QCheck.(list_of_size (Gen.int_range 4 20) (int_bound 1))
    (fun word ->
      let m = Zoo.shift_register ~bits:3 in
      let outputs, _ = Machine.simulate m word in
      (* Output at step t is the input of step t-3 (zero-initialised). *)
      let expected =
        List.mapi (fun t _ -> if t < 3 then 0 else List.nth word (t - 3)) word
      in
      outputs = expected)

let test_serial_adder_adds =
  QCheck.Test.make ~count:100 ~name:"serial adder computes a + b"
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let m = Zoo.serial_adder () in
      (* Feed 9 bit-pairs LSB first: input symbol = 2*a_bit + b_bit. *)
      let word =
        List.init 9 (fun k -> (2 * ((a lsr k) land 1)) + ((b lsr k) land 1))
      in
      let outputs, _ = Machine.simulate m word in
      let sum = List.fold_right (fun bit acc -> (2 * acc) + bit) outputs 0 in
      sum = a + b)

let test_parity_tracks_ones =
  QCheck.Test.make ~count:100 ~name:"parity machine tracks running parity"
    QCheck.(list_of_size (Gen.int_range 1 30) (int_bound 1))
    (fun word ->
      let m = Zoo.parity () in
      let outputs, _ = Machine.simulate m word in
      let rec go acc word outputs =
        match (word, outputs) with
        | [], [] -> true
        | x :: w, o :: os ->
          let acc = acc lxor x in
          o = acc && go acc w os
        | _ -> false
      in
      go 0 word outputs)

let test_counter_wraps () =
  let m = Zoo.counter ~modulus:4 in
  let outputs, final = Machine.simulate m [ 1; 1; 1; 1; 0; 1 ] in
  check_bool "carry on 4th increment" true (outputs = [ 0; 0; 0; 1; 0; 0 ]);
  check_int "state" 1 final

let test_toggle () =
  let m = Zoo.toggle () in
  let outputs, final = Machine.simulate m [ 1; 1; 0; 1 ] in
  check_bool "old state reported" true (outputs = [ 0; 1; 0; 0 ]);
  check_int "final" 1 final

(* ------------------------------------------------------------------ *)
(* Kiss                                                                *)
(* ------------------------------------------------------------------ *)

let kiss_example =
  ".i 2\n.o 1\n.s 2\n.r a\n00 a a 0\n01 a b 1\n1- a b 0\n-- b a 1\n.e\n"

let test_kiss_parse_basic () =
  let m = Kiss.parse ~name:"t" kiss_example in
  check_int "states" 2 m.Machine.num_states;
  check_int "inputs (2 bits)" 4 m.Machine.num_inputs;
  check_int "reset" 0 m.Machine.reset;
  (* "1-" expands to minterms 10 and 11. *)
  check_int "delta(a, 10)" 1 (Machine.delta m 0 2);
  check_int "delta(a, 11)" 1 (Machine.delta m 0 3);
  check_string "output of (a, 01)" "1"
    m.Machine.output_names.(Machine.lambda m 0 1)

let test_kiss_roundtrip_fig5 () =
  let m = Zoo.paper_fig5 () in
  let m' = Kiss.parse ~name:"fig5" (Kiss.print m) in
  check_bool "roundtrip behaviour" true (Machine.equal_behaviour m m')

let test_kiss_roundtrip_shiftreg () =
  let m = Zoo.shift_register ~bits:3 in
  let m' = Kiss.parse (Kiss.print m) in
  check_bool "roundtrip behaviour" true (Machine.equal_behaviour m m')

let expect_parse_error text =
  match Kiss.parse text with
  | exception Kiss.Parse_error _ -> true
  | _ -> false

let test_kiss_conflict_rejected () =
  check_bool "conflicting rows" true
    (expect_parse_error ".i 1\n.o 1\n0 a a 0\n0 a b 0\n1 a a 0\n1 b b 0\n0 b b 0\n.e\n")

let test_kiss_missing_entry_rejected () =
  check_bool "incomplete machine" true
    (expect_parse_error ".i 1\n.o 1\n0 a b 0\n0 b a 1\n1 b b 0\n.e\n")

let test_kiss_completion_self_loop () =
  let m =
    Kiss.parse ~on_missing:`Self_loop ".i 1\n.o 1\n0 a b 1\n0 b a 1\n1 b b 1\n.e\n"
  in
  check_int "missing entry self-loops" 0 (Machine.delta m 0 1);
  check_string "zero output" "0" m.Machine.output_names.(Machine.lambda m 0 1)

let test_kiss_completion_reset () =
  let m =
    Kiss.parse ~on_missing:`Reset ".i 1\n.o 1\n.r b\n0 a b 1\n0 b a 1\n1 b b 1\n.e\n"
  in
  check_int "missing entry goes to reset" 1 (Machine.delta m 0 1)

let test_kiss_bad_output_rejected () =
  check_bool "dash output" true (expect_parse_error ".i 1\n.o 1\n0 a a -\n1 a a 0\n.e\n");
  check_bool "wide output" true (expect_parse_error ".i 1\n.o 1\n0 a a 00\n1 a a 0\n.e\n")

let test_kiss_bad_cube_rejected () =
  check_bool "bad char" true (expect_parse_error ".i 1\n.o 1\nx a a 0\n.e\n");
  check_bool "wrong width" true (expect_parse_error ".i 2\n.o 1\n0 a a 0\n.e\n")

let test_kiss_unknown_reset_rejected () =
  check_bool "unknown reset" true
    (expect_parse_error ".i 1\n.o 1\n.r zz\n0 a a 0\n1 a a 1\n.e\n")

let test_kiss_state_count_mismatch_rejected () =
  check_bool ".s mismatch" true
    (expect_parse_error ".i 1\n.o 1\n.s 3\n0 a a 0\n1 a a 1\n.e\n")

let test_kiss_comments_and_whitespace () =
  let m =
    Kiss.parse "# header comment\n.i 1\n.o 1\n\n0 a a 0 # trailing\n1 a\tb 1\n0 b a 1\n1 b b 0\n.e\n"
  in
  check_int "states" 2 m.Machine.num_states

let test_kiss_print_declares_products () =
  let text = Kiss.print (Zoo.paper_fig5 ()) in
  let m = Kiss.parse text in
  check_int "8 minterm rows" 8 (m.Machine.num_states * m.Machine.num_inputs)

let test_kiss_input_output_bits () =
  let m = Zoo.shift_register ~bits:3 in
  check_int "input bits" 1 (Kiss.input_bits m);
  check_int "output bits" 1 (Kiss.output_bits m)

(* ------------------------------------------------------------------ *)
(* Reach                                                               *)
(* ------------------------------------------------------------------ *)

let machine_with_unreachable () =
  (* State 2 is unreachable from reset 0. *)
  Machine.make ~name:"unreach" ~num_states:3 ~num_inputs:2 ~num_outputs:2
    ~next:[| [| 0; 1 |]; [| 1; 0 |]; [| 2; 0 |] |]
    ~output:[| [| 0; 0 |]; [| 1; 1 |]; [| 0; 1 |] |]
    ()

let test_reach_flags () =
  let m = machine_with_unreachable () in
  let r = Reach.reachable m in
  check_bool "0 reachable" true r.(0);
  check_bool "1 reachable" true r.(1);
  check_bool "2 unreachable" false r.(2);
  check_int "count" 2 (Reach.reachable_count m);
  check_bool "not connected" false (Reach.is_connected m)

let test_reach_trim () =
  let m = machine_with_unreachable () in
  let t = Reach.trim m in
  check_int "two states" 2 t.Machine.num_states;
  check_bool "behaviour preserved" true (Machine.equal_behaviour m t);
  check_bool "trim is idempotent" true (Reach.trim t == t)

let test_strongly_connected () =
  check_bool "shiftreg strongly connected" true
    (Reach.is_strongly_connected (Zoo.shift_register ~bits:3));
  let sink =
    Machine.make ~name:"sink" ~num_states:2 ~num_inputs:1 ~num_outputs:1
      ~next:[| [| 1 |]; [| 1 |] |]
      ~output:[| [| 0 |]; [| 0 |] |]
      ()
  in
  check_bool "sink not strongly connected" false (Reach.is_strongly_connected sink)

(* ------------------------------------------------------------------ *)
(* Equiv                                                               *)
(* ------------------------------------------------------------------ *)

let machine_with_twin () =
  (* States 1 and 2 are equivalent twins. *)
  Machine.make ~name:"twin" ~num_states:3 ~num_inputs:2 ~num_outputs:2
    ~next:[| [| 1; 2 |]; [| 0; 1 |]; [| 0; 2 |] |]
    ~output:[| [| 0; 1 |]; [| 1; 0 |]; [| 1; 0 |] |]
    ()

let test_equiv_classes () =
  let m = machine_with_twin () in
  let cls = Equiv.classes m in
  check_bool "1 ~ 2" true (cls.(1) = cls.(2));
  check_bool "0 not~ 1" true (cls.(0) <> cls.(1));
  check_int "two classes" 2 (Equiv.num_classes m);
  check_bool "not reduced" false (Equiv.is_reduced m);
  check_bool "equivalent" true (Equiv.equivalent m 1 2)

let test_equiv_minimize () =
  let m = machine_with_twin () in
  let r = Equiv.minimize m in
  check_int "two states" 2 r.Machine.num_states;
  check_bool "behaviour preserved" true (Machine.equal_behaviour m r);
  check_bool "result reduced" true (Equiv.is_reduced r);
  check_bool "minimize idempotent" true (Equiv.minimize r == r)

let test_equiv_fig5_reduced () =
  check_bool "fig5 reduced" true (Equiv.is_reduced (Zoo.paper_fig5 ()));
  check_bool "shiftreg reduced" true (Equiv.is_reduced (Zoo.shift_register ~bits:3))

let test_equiv_distinguishes_late () =
  (* Two states that agree on immediate outputs but diverge after two
     steps: 0 and 1 produce the same outputs now, successors differ. *)
  let m =
    Machine.make ~name:"late" ~num_states:4 ~num_inputs:1 ~num_outputs:2
      ~next:[| [| 2 |]; [| 3 |]; [| 2 |]; [| 3 |] |]
      ~output:[| [| 0 |]; [| 0 |]; [| 0 |]; [| 1 |] |]
      ()
  in
  check_bool "0 and 1 distinguished" false (Equiv.equivalent m 0 1)

(* ------------------------------------------------------------------ *)
(* Generate                                                            *)
(* ------------------------------------------------------------------ *)

let test_generate_random_connected_reduced =
  QCheck.Test.make ~count:50 ~name:"random machines are connected and reduced"
    QCheck.(pair (int_bound 1000) (int_range 2 12))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let m =
        Generate.random ~rng ~name:"r" ~num_states:n ~num_inputs:4
          ~num_outputs:4 ()
      in
      m.Machine.num_states = n && Reach.is_connected m && Equiv.is_reduced m)

let test_generate_block_product_plants_pair =
  QCheck.Test.make ~count:30 ~name:"block product plants a symmetric pair"
    QCheck.(int_bound 1000)
    (fun seed ->
      let rng = Rng.create seed in
      let info =
        Generate.block_product ~rng ~name:"bp"
          ~blocks:[ (1, 2); (2, 1); (1, 1) ]
          ~num_inputs:8 ~num_outputs:4 ()
      in
      let m = info.Generate.machine in
      let pi = Partition.of_class_map info.Generate.pi_classes in
      let rho = Partition.of_class_map info.Generate.rho_classes in
      Partition.num_classes pi = info.Generate.num_pi
      && Partition.num_classes rho = info.Generate.num_rho
      && Pair.is_symmetric_pair ~next:m.Machine.next pi rho
      && Partition.is_identity (Partition.meet pi rho)
      && Reach.is_connected m && Equiv.is_reduced m)

let test_generate_shuffled_preserves () =
  let rng = Rng.create 77 in
  let info =
    Generate.block_product ~rng ~name:"bp" ~blocks:[ (1, 2); (1, 1); (1, 1) ]
      ~num_inputs:4 ~num_outputs:4 ~distinct_signatures:false ()
  in
  let shuffled = Generate.shuffled ~rng info in
  let m = shuffled.Generate.machine in
  check_bool "behaviour preserved" true
    (Machine.equal_behaviour info.Generate.machine m);
  let pi = Partition.of_class_map shuffled.Generate.pi_classes in
  let rho = Partition.of_class_map shuffled.Generate.rho_classes in
  check_bool "planted pair still symmetric" true
    (Pair.is_symmetric_pair ~next:m.Machine.next pi rho)

let test_generate_distinct_signatures_mm_clean () =
  let rng = Rng.create 3 in
  let info =
    Generate.block_product ~rng ~name:"bp" ~blocks:[ (2, 2); (2, 2) ]
      ~num_inputs:8 ~num_outputs:8 ~distinct_signatures:true ()
  in
  let m = info.Generate.machine in
  let pi = Partition.of_class_map info.Generate.pi_classes in
  let rho = Partition.of_class_map info.Generate.rho_classes in
  check_bool "M(rho) = pi" true
    (Partition.equal (Pair.big_m ~next:m.Machine.next rho) pi);
  check_bool "M(pi) = rho" true
    (Partition.equal (Pair.big_m ~next:m.Machine.next pi) rho)

let test_generate_completeness =
  QCheck.Test.make ~count:30
    ~name:"sparse random machines stay connected, completeness validated"
    QCheck.(pair (int_bound 1000) (int_range 4 16))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let m =
        Generate.random ~rng ~name:"r" ~num_states:n ~num_inputs:4
          ~num_outputs:4 ~ensure_reduced:false ~completeness:0.3 ()
      in
      m.Machine.num_states = n && Reach.is_connected m)

let test_generate_completeness_rejects_bad () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "completeness out of range"
    (Invalid_argument "Generate.random: completeness must be in [0, 1]")
    (fun () ->
      ignore
        (Generate.random ~rng ~name:"r" ~num_states:4 ~num_inputs:2
           ~num_outputs:4 ~completeness:1.5 ()))

let test_generate_planted () =
  let rng = Rng.create 5 in
  let info =
    Generate.planted ~rng ~name:"planted" ~num_states:200 ~num_inputs:4 ()
  in
  let m = info.Generate.machine in
  let pi = Partition.of_class_map info.Generate.pi_classes in
  let rho = Partition.of_class_map info.Generate.rho_classes in
  check_bool "reaches the requested size" true (m.Machine.num_states >= 200);
  check_bool "connected" true (Reach.is_connected m);
  check_bool "reduced" true (Equiv.is_reduced m);
  check_bool "planted pair still symmetric after restriction" true
    (Pair.is_symmetric_pair ~next:m.Machine.next pi rho);
  check_bool "identity meet" true (Partition.is_identity (Partition.meet pi rho));
  check_int "class counts match" (Partition.num_classes pi)
    info.Generate.num_pi;
  check_int "class counts match (rho)" (Partition.num_classes rho)
    info.Generate.num_rho

let test_generate_of_spec () =
  (match Generate.of_spec "planted:96x4@2" with
  | None -> Alcotest.fail "planted spec should parse"
  | Some m ->
    check_bool "planted size" true (m.Machine.num_states >= 96);
    check_int "planted inputs" 4 m.Machine.num_inputs;
    (* same spec, same machine - seeds pin the generator *)
    (match Generate.of_spec "planted:96x4@2" with
    | Some m' -> check_bool "reproducible" true (Machine.equal_behaviour m m')
    | None -> Alcotest.fail "reparse failed"));
  (match Generate.of_spec "random:32x4@7,0.5" with
  | None -> Alcotest.fail "random spec should parse"
  | Some m ->
    check_int "random size" 32 m.Machine.num_states;
    check_bool "random connected" true (Reach.is_connected m));
  List.iter
    (fun s ->
      match Generate.of_spec s with
      | None -> ()
      | Some _ -> Alcotest.fail ("spec should not parse: " ^ s))
    [ "planted:96"; "planted:ax4"; "weird:1x2"; "dk16"; "random:4x3" ]

let test_binary_output_names () =
  let names = Generate.binary_output_names 5 in
  check_int "five names" 5 (Array.length names);
  check_string "width 3" "000" names.(0);
  check_string "last" "100" names.(4)

(* ------------------------------------------------------------------ *)
(* Dot                                                                 *)
(* ------------------------------------------------------------------ *)

let test_dot_render () =
  let s = Dot.render (Zoo.paper_fig5 ()) in
  check_bool "digraph header" true (contains s "digraph \"fig5\"");
  check_bool "reset arrow" true (contains s "__start -> q0");
  check_bool "edge label" true (contains s "q0 -> q2")

let test_dot_clusters () =
  let m = Zoo.paper_fig5 () in
  let s = Dot.render ~pi_classes:[| 0; 0; 1; 1 |] m in
  check_bool "cluster 0" true (contains s "subgraph cluster_0");
  check_bool "cluster 1" true (contains s "subgraph cluster_1")

let () =
  Alcotest.run "stc_fsm"
    [
      ( "machine",
        [
          Alcotest.test_case "bits_for" `Quick test_bits_for;
          Alcotest.test_case "make validates dimensions" `Quick
            test_make_validates_dimensions;
          Alcotest.test_case "make validates range" `Quick test_make_validates_range;
          Alcotest.test_case "make validates reset" `Quick test_make_validates_reset;
          Alcotest.test_case "make copies tables" `Quick test_make_copies_tables;
          Alcotest.test_case "fig5 table" `Quick test_fig5_table;
          Alcotest.test_case "fig5 simulation" `Quick test_fig5_simulation;
          Alcotest.test_case "run from state" `Quick test_run_from_state;
          Alcotest.test_case "relabel preserves behaviour" `Quick test_relabel_behaviour;
          Alcotest.test_case "relabel rejects non-permutation" `Quick
            test_relabel_rejects_non_permutation;
          Alcotest.test_case "equal_behaviour negative" `Quick
            test_equal_behaviour_negative;
          Alcotest.test_case "iter_transitions count" `Quick test_iter_transitions_count;
          Alcotest.test_case "pp contains cells" `Quick test_pp_contains_cells;
          Alcotest.test_case "conventional flip-flops" `Quick test_flipflops_conventional;
        ] );
      ( "zoo",
        [
          qcheck test_shiftreg_semantics;
          qcheck test_serial_adder_adds;
          qcheck test_parity_tracks_ones;
          Alcotest.test_case "counter wraps" `Quick test_counter_wraps;
          Alcotest.test_case "toggle" `Quick test_toggle;
        ] );
      ( "kiss",
        [
          Alcotest.test_case "parse basic" `Quick test_kiss_parse_basic;
          Alcotest.test_case "roundtrip fig5" `Quick test_kiss_roundtrip_fig5;
          Alcotest.test_case "roundtrip shiftreg" `Quick test_kiss_roundtrip_shiftreg;
          Alcotest.test_case "conflict rejected" `Quick test_kiss_conflict_rejected;
          Alcotest.test_case "missing entry rejected" `Quick
            test_kiss_missing_entry_rejected;
          Alcotest.test_case "completion self-loop" `Quick test_kiss_completion_self_loop;
          Alcotest.test_case "completion reset" `Quick test_kiss_completion_reset;
          Alcotest.test_case "bad output rejected" `Quick test_kiss_bad_output_rejected;
          Alcotest.test_case "bad cube rejected" `Quick test_kiss_bad_cube_rejected;
          Alcotest.test_case "unknown reset rejected" `Quick
            test_kiss_unknown_reset_rejected;
          Alcotest.test_case ".s mismatch rejected" `Quick
            test_kiss_state_count_mismatch_rejected;
          Alcotest.test_case "comments and whitespace" `Quick
            test_kiss_comments_and_whitespace;
          Alcotest.test_case "print declares products" `Quick
            test_kiss_print_declares_products;
          Alcotest.test_case "input/output bits" `Quick test_kiss_input_output_bits;
        ] );
      ( "reach",
        [
          Alcotest.test_case "flags" `Quick test_reach_flags;
          Alcotest.test_case "trim" `Quick test_reach_trim;
          Alcotest.test_case "strongly connected" `Quick test_strongly_connected;
        ] );
      ( "equiv",
        [
          Alcotest.test_case "classes" `Quick test_equiv_classes;
          Alcotest.test_case "minimize" `Quick test_equiv_minimize;
          Alcotest.test_case "fig5 reduced" `Quick test_equiv_fig5_reduced;
          Alcotest.test_case "distinguishes late divergence" `Quick
            test_equiv_distinguishes_late;
        ] );
      ( "generate",
        [
          qcheck test_generate_random_connected_reduced;
          qcheck test_generate_block_product_plants_pair;
          Alcotest.test_case "shuffled preserves" `Quick test_generate_shuffled_preserves;
          Alcotest.test_case "distinct signatures are Mm-clean" `Quick
            test_generate_distinct_signatures_mm_clean;
          qcheck test_generate_completeness;
          Alcotest.test_case "completeness validated" `Quick
            test_generate_completeness_rejects_bad;
          Alcotest.test_case "planted family" `Quick test_generate_planted;
          Alcotest.test_case "of_spec" `Quick test_generate_of_spec;
          Alcotest.test_case "binary output names" `Quick test_binary_output_names;
        ] );
      ( "dot",
        [
          Alcotest.test_case "render" `Quick test_dot_render;
          Alcotest.test_case "clusters" `Quick test_dot_clusters;
        ] );
    ]
